"""Worker selection (Eq. 13 + the genetic algorithm of Alg. 1, lines 3-5).

The control module must pick a worker set ``S^h`` whose merged label
distribution is as close to IID as possible while the occupied ingress
bandwidth stays within budget.  Workers that have participated less often
get higher priority so every worker's data eventually contributes.

Everything here operates on dense metadata arrays -- per-sample durations,
label-distribution rows, participation counts -- with *positional* indices:
no live worker objects are needed to plan a round.  That makes the module
population-agnostic: a lazily-materialised registry hands the GA the rows
of its per-round candidate pool and the resulting positional selection is
remapped to global worker ids afterwards
(:meth:`repro.core.controller.RoundPlan.remapped`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batching import occupied_bandwidth
from repro.core.divergence import _EPS, kl_divergence, mixed_label_distribution
from repro.exceptions import SelectionError
from repro.utils.numeric import normalize_distribution
from repro.utils.rng import new_rng


def selection_priorities(participation_counts: np.ndarray) -> np.ndarray:
    """Selection priority p_i = sum_j (K_j + 1) / (K_i + 1)  (Eq. 13)."""
    counts = np.asarray(participation_counts, dtype=np.float64)
    if np.any(counts < 0):
        raise ValueError("participation counts must be non-negative")
    total = (counts + 1.0).sum()
    return total / (counts + 1.0)


@dataclass
class SelectionResult:
    """Outcome of a worker-selection run.

    Attributes:
        selected: Sorted worker indices forming ``S^h``.
        kl: KL divergence of the selected set's merged label distribution.
        feasible: Whether the bandwidth constraint is satisfied.
    """

    selected: np.ndarray
    kl: float
    feasible: bool


def _fitness(
    mask: np.ndarray,
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    target: np.ndarray,
    bandwidth_per_sample: float,
    bandwidth_budget: float,
) -> float:
    """Penalised fitness: KL divergence + constraint violation - utilisation bonus."""
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return 1e6
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    kl = kl_divergence(phi, target)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    violation = max(0.0, used - bandwidth_budget) / bandwidth_budget
    utilisation = min(1.0, used / bandwidth_budget)
    return kl + 10.0 * violation + 0.05 * (1.0 - utilisation)


class PopulationFitness:
    """Vectorized GA fitness: a whole population evaluated in one pass.

    The per-worker KL contribution vectors ``d_i * V_i`` (the numerator
    terms of Eq. 11) and the smoothed reference distribution of Eq. 12 are
    precomputed once per round; evaluating a population of membership masks
    is then one masked matrix reduction plus a row-wise KL instead of a
    Python loop over individuals -- ``population x generations`` scalar
    fitness calls collapse into ``generations`` matrix ops.

    Every reduction is arranged to be bit-identical to :func:`_fitness`:
    unselected workers contribute exact ``0.0`` rows to a sequential sum
    over the worker axis (adding ``0.0`` is a bitwise no-op), batch-size
    sums are integer-valued and therefore order-independent in float64, and
    the per-class reductions run over the same contiguous axis length as
    the scalar path.  The GA's comparisons -- and therefore its
    :class:`SelectionResult` -- are unchanged for a fixed seed.
    """

    def __init__(
        self,
        batch_sizes: np.ndarray,
        label_distributions: np.ndarray,
        target_distribution: np.ndarray,
        bandwidth_per_sample: float,
        bandwidth_budget: float,
    ) -> None:
        self._batches = np.asarray(batch_sizes, dtype=np.int64)
        if np.any(self._batches < 0):
            # Mirrors the check mixed_label_distribution applies per mask.
            raise ValueError("batch sizes must be non-negative")
        self._matrix = np.atleast_2d(np.asarray(label_distributions, dtype=np.float64))
        #: Per-worker contributions ``d_i * V_i`` to the merged mixture.
        self._contributions = self._batches.astype(np.float64)[:, None] * self._matrix
        # The smoothed reference distribution: identical for every mask, so
        # the normalisation inside ``kl_divergence`` is hoisted out.
        self._target = np.asarray(target_distribution, dtype=np.float64)
        phi0 = normalize_distribution(self._target)
        phi0 = phi0 + _EPS
        self._phi0 = phi0 / phi0.sum()
        self._bandwidth_per_sample = bandwidth_per_sample
        self._bandwidth_budget = bandwidth_budget

    def evaluate(self, masks: np.ndarray) -> np.ndarray:
        """Fitness of every row of ``masks`` (a ``(population, N)`` matrix).

        Duplicate individuals -- common once the GA starts converging --
        are evaluated once and their score broadcast back.
        """
        masks = np.atleast_2d(np.asarray(masks, dtype=bool))
        unique, inverse = np.unique(masks, axis=0, return_inverse=True)
        if unique.shape[0] < masks.shape[0]:
            return self.evaluate(unique)[inverse]
        nonempty = masks.any(axis=1)
        fitness = np.full(masks.shape[0], 1e6)
        if not np.any(nonempty):
            return fitness
        # Masks whose selected workers all have zero batch size take the
        # scalar path's uniform-mean fallback; evaluate them one by one (a
        # degenerate case, unreachable from the engines where batches >= 1).
        sizes_all = masks @ self._batches
        degenerate = nonempty & (sizes_all == 0)
        if np.any(degenerate):
            for row in np.flatnonzero(degenerate):
                fitness[row] = _fitness(
                    masks[row], self._batches, self._matrix, self._target,
                    self._bandwidth_per_sample, self._bandwidth_budget,
                )
            nonempty = nonempty & ~degenerate
            if not np.any(nonempty):
                return fitness
        # Masked stack: unselected workers become exact-zero rows, so the
        # sequential sum over the worker axis reproduces the scalar path's
        # selected-rows sum bit for bit.
        stacked = masks[:, :, None] * self._contributions[None, :, :]
        mixture = stacked.sum(axis=1)[nonempty]
        sizes = sizes_all[nonempty]
        phi = mixture / sizes[:, None].astype(np.float64)
        # mixed_label_distribution normalises the mixture, kl_divergence
        # normalises again and applies epsilon smoothing; mirror all three.
        phi = phi / phi.sum(axis=1, keepdims=True)
        phi = phi / phi.sum(axis=1, keepdims=True)
        phi = phi + _EPS
        phi = phi / phi.sum(axis=1, keepdims=True)
        kl = np.sum(phi * np.log(phi / self._phi0[None, :]), axis=1)
        used = sizes.astype(np.float64) * self._bandwidth_per_sample
        budget = self._bandwidth_budget
        violation = np.maximum(0.0, used - budget) / budget
        utilisation = np.minimum(1.0, used / budget)
        fitness[nonempty] = kl + 10.0 * violation + 0.05 * (1.0 - utilisation)
        return fitness


def genetic_select(
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    target_distribution: np.ndarray,
    bandwidth_per_sample: float,
    bandwidth_budget: float,
    priorities: np.ndarray | None = None,
    population_size: int = 20,
    generations: int = 15,
    mutation_rate: float = 0.05,
    seed_fraction: float = 0.5,
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Select the worker set ``S^h`` with a genetic algorithm (Alg. 1 line 5).

    Individuals are membership bit-masks over the workers.  The initial
    population is seeded with the ``m`` highest-priority workers (Eq. 13);
    evolution minimises the KL divergence of the merged label distribution
    under the ingress-bandwidth constraint (Eq. 10).

    Returns:
        The best individual found, decoded into a :class:`SelectionResult`.
    """
    rng = rng if rng is not None else new_rng()
    batch_sizes = np.asarray(batch_sizes, dtype=np.int64)
    label_distributions = np.atleast_2d(np.asarray(label_distributions))
    num_workers = batch_sizes.shape[0]
    if label_distributions.shape[0] != num_workers:
        raise SelectionError(
            "label_distributions and batch_sizes describe different worker counts"
        )
    if num_workers == 0:
        raise SelectionError("cannot select from zero workers")
    if priorities is None:
        priorities = np.ones(num_workers)
    priorities = np.asarray(priorities, dtype=np.float64)

    fitness = PopulationFitness(
        batch_sizes, label_distributions, target_distribution,
        bandwidth_per_sample, bandwidth_budget,
    )

    # Seed: the m highest-priority workers, plus random perturbations of it.
    seed_count = max(1, int(round(seed_fraction * num_workers)))
    priority_order = np.argsort(-priorities)
    seed_mask = np.zeros(num_workers, dtype=bool)
    seed_mask[priority_order[:seed_count]] = True

    population = [seed_mask.copy()]
    for __ in range(population_size - 1):
        individual = seed_mask.copy()
        flips = rng.random(num_workers) < 0.25
        individual[flips] = ~individual[flips]
        if not individual.any():
            individual[int(rng.integers(num_workers))] = True
        population.append(individual)

    scores = fitness.evaluate(np.stack(population))

    for __ in range(generations):
        new_population = [population[int(np.argmin(scores))].copy()]  # elitism
        while len(new_population) < population_size:
            # Tournament selection of two parents.
            contenders = rng.integers(0, population_size, size=4)
            parent_a = population[int(contenders[:2][np.argmin(scores[contenders[:2]])])]
            parent_b = population[int(contenders[2:][np.argmin(scores[contenders[2:]])])]
            # Uniform crossover.
            crossover = rng.random(num_workers) < 0.5
            child = np.where(crossover, parent_a, parent_b)
            # Bit-flip mutation.
            flips = rng.random(num_workers) < mutation_rate
            child = np.where(flips, ~child, child)
            if not child.any():
                child[int(rng.integers(num_workers))] = True
            new_population.append(child)
        population = new_population
        scores = fitness.evaluate(np.stack(population))

    best = population[int(np.argmin(scores))]
    selected = np.flatnonzero(best)
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    return SelectionResult(
        selected=np.sort(selected),
        kl=kl_divergence(phi, target_distribution),
        feasible=used <= bandwidth_budget * (1.0 + 1e-9),
    )


def greedy_select(
    batch_sizes: np.ndarray,
    label_distributions: np.ndarray,
    target_distribution: np.ndarray,
    bandwidth_per_sample: float,
    bandwidth_budget: float,
    priorities: np.ndarray | None = None,
) -> SelectionResult:
    """Greedy baseline for the selection step (used by the ablation bench).

    Workers are added in priority order while they fit in the bandwidth
    budget and do not increase the KL divergence of the running mixture by
    more than they have to (each step picks the candidate whose addition
    yields the lowest mixture KL).
    """
    batch_sizes = np.asarray(batch_sizes, dtype=np.int64)
    label_distributions = np.atleast_2d(np.asarray(label_distributions))
    num_workers = batch_sizes.shape[0]
    if priorities is None:
        priorities = np.ones(num_workers)
    remaining = list(np.argsort(-np.asarray(priorities)))
    selected: list[int] = []
    while remaining:
        best_candidate = None
        best_kl = np.inf
        for candidate in remaining:
            trial = selected + [candidate]
            used = occupied_bandwidth(batch_sizes, trial, bandwidth_per_sample)
            if used > bandwidth_budget:
                continue
            phi = mixed_label_distribution(label_distributions, batch_sizes, trial)
            trial_kl = kl_divergence(phi, target_distribution)
            if trial_kl < best_kl:
                best_kl = trial_kl
                best_candidate = candidate
        if best_candidate is None:
            break
        selected.append(best_candidate)
        remaining.remove(best_candidate)
        current_phi = mixed_label_distribution(
            label_distributions, batch_sizes, selected
        )
        if kl_divergence(current_phi, target_distribution) < 1e-3 and len(selected) >= 2:
            break
    if not selected:
        # Always select at least the single highest-priority worker.
        selected = [int(np.argsort(-np.asarray(priorities))[0])]
    phi = mixed_label_distribution(label_distributions, batch_sizes, selected)
    used = occupied_bandwidth(batch_sizes, selected, bandwidth_per_sample)
    return SelectionResult(
        selected=np.sort(np.asarray(selected)),
        kl=kl_divergence(phi, target_distribution),
        feasible=used <= bandwidth_budget * (1.0 + 1e-9),
    )
