"""The MergeSFL control module (Section IV-A, Alg. 1).

At the start of every communication round the control module estimates
worker states, regulates batch sizes (Eq. 9), selects a worker set whose
merged label distribution approximates IID under the PS ingress-bandwidth
constraint (Eq. 10-13, genetic algorithm), fine-tunes the batch sizes to
push the KL divergence below the threshold (Eq. 14, Lagrangian step) and
finally rescales the batch sizes to use the available bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batching import regulate_batch_sizes, scale_to_bandwidth
from repro.core.divergence import (
    iid_distribution,
    kl_divergence,
    mixed_label_distribution,
)
from repro.core.regulation import finetune_batch_sizes
from repro.core.selection import selection_priorities


@dataclass
class ControlContext:
    """Observable state handed to a control policy at the start of a round.

    Attributes:
        round_index: Zero-based communication-round counter.
        per_sample_durations: Estimated ``mu_i + beta_i`` per worker (s).
        label_distributions: ``(num_workers, num_classes)`` matrix of V_i.
        participation_counts: ``K_i`` per worker.
        bandwidth_budget: Estimated ingress budget ``B^h`` (same unit as
            ``bandwidth_per_sample`` times a batch size).
        bandwidth_per_sample: ``c``, ingress bandwidth occupied per sample --
            a scalar, or a per-worker vector when split depths give workers
            different feature-exchange sizes.
        max_batch_size: ``D``, the default maximum batch size.
        base_batch_size: Identical batch size used by non-regulating baselines.
        rng: Round-specific random generator.
        worker_ids: Global worker id of every row in the dense arrays
            (``None`` when row indices *are* the global ids).  Stateful
            selection solvers key cross-round state on these so lazy
            candidate pools remap correctly between rounds.
    """

    round_index: int
    per_sample_durations: np.ndarray
    label_distributions: np.ndarray
    participation_counts: np.ndarray
    bandwidth_budget: float
    bandwidth_per_sample: "float | np.ndarray"
    max_batch_size: int
    base_batch_size: int
    rng: np.random.Generator
    worker_ids: np.ndarray | None = None


@dataclass
class RoundPlan:
    """Decision of a control policy for one round.

    Attributes:
        selected: Sorted worker indices forming ``S^h``.
        batch_sizes: Mapping from selected worker id to its batch size ``d_i``.
        merged_kl: KL divergence of the planned merged label distribution.
        info: Free-form diagnostics (selection feasibility, GA stats, ...).
        depths: Per-worker cut depth into the bottom model, assigned by a
            split-point policy (``None`` under the uniform global cut).
    """

    selected: list[int]
    batch_sizes: dict[int, int]
    merged_kl: float = 0.0
    info: dict = field(default_factory=dict)
    depths: dict[int, int] | None = None

    @property
    def total_batch(self) -> int:
        """Total merged batch size of the round."""
        return int(sum(self.batch_sizes.values()))

    def remapped(self, ids: "np.ndarray") -> "RoundPlan":
        """Translate a candidate-local plan into global worker ids.

        Policies planning over a candidate subset see dense candidate-local
        arrays; ``ids[local]`` is the global id of candidate ``local``.
        ``ids`` is sorted ascending, so a sorted local selection stays
        sorted after remapping.
        """
        return RoundPlan(
            selected=[int(ids[local]) for local in self.selected],
            batch_sizes={
                int(ids[local]): batch
                for local, batch in self.batch_sizes.items()
            },
            merged_kl=self.merged_kl,
            info=dict(self.info, candidate_pool=int(len(ids))),
        )

    def with_depths(self, depths: dict[int, int]) -> "RoundPlan":
        """Copy of the plan with per-worker cut depths attached."""
        return RoundPlan(
            selected=list(self.selected),
            batch_sizes=dict(self.batch_sizes),
            merged_kl=self.merged_kl,
            info=dict(self.info),
            depths=dict(depths),
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (batch-size keys become strings).

        Plans are normally transient, but a relaxed schedule may prefetch
        the *next* round's plan during the current round's aggregate window
        (cross-round pipelining); the engine then serialises it into the
        checkpoint so resume stays exact.  ``depths`` appears only when a
        split-point policy assigned them, so uniform checkpoints keep the
        historical format.
        """
        payload = {
            "selected": [int(w) for w in self.selected],
            "batch_sizes": {
                str(worker): int(batch)
                for worker, batch in self.batch_sizes.items()
            },
            "merged_kl": float(self.merged_kl),
            "info": dict(self.info),
        }
        if self.depths is not None:
            payload["depths"] = {
                str(worker): int(depth)
                for worker, depth in self.depths.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundPlan":
        """Inverse of :meth:`to_dict`."""
        depths = payload.get("depths")
        return cls(
            selected=[int(w) for w in payload["selected"]],
            batch_sizes={
                int(worker): int(batch)
                for worker, batch in payload["batch_sizes"].items()
            },
            merged_kl=float(payload.get("merged_kl", 0.0)),
            info=dict(payload.get("info", {})),
            depths=None if depths is None else {
                int(worker): int(depth) for worker, depth in depths.items()
            },
        )


class ControlModule:
    """Implements Alg. 1: worker arrangement and configuration.

    Args:
        kl_threshold: ``epsilon`` for the fine-tuning step.
        enable_regulation: Apply Eq. 9 batch-size regulation (otherwise all
            workers use the base batch size).
        enable_selection: Run the GA worker selection (otherwise all workers
            participate).
        enable_finetune: Run the Lagrangian KL fine-tuning and bandwidth
            scaling steps.
        ga_population: GA population size.
        ga_generations: GA generation count.
        selection_fraction: Fraction ``m/N`` used to seed the GA population.
        use_greedy: Replace the GA with the greedy selector (ablation);
            shorthand for ``solver=GreedySolver()``.
        solver: Worker-selection solver (see :mod:`repro.selection`).  The
            default builds the paper's GA from the knobs above, which is
            bit-exact with the historical inline call.
    """

    def __init__(
        self,
        kl_threshold: float = 0.05,
        enable_regulation: bool = True,
        enable_selection: bool = True,
        enable_finetune: bool = True,
        ga_population: int = 20,
        ga_generations: int = 15,
        selection_fraction: float = 0.5,
        use_greedy: bool = False,
        solver: "object | None" = None,
    ) -> None:
        self.kl_threshold = kl_threshold
        self.enable_regulation = enable_regulation
        self.enable_selection = enable_selection
        self.enable_finetune = enable_finetune
        self.ga_population = ga_population
        self.ga_generations = ga_generations
        self.selection_fraction = selection_fraction
        self.use_greedy = use_greedy
        if solver is None:
            # Imported lazily: repro.selection imports repro.core, so a
            # module-level import here would be circular.
            from repro.selection.solvers import GASolver, GreedySolver

            if use_greedy:
                solver = GreedySolver()
            else:
                solver = GASolver(
                    population_size=ga_population,
                    generations=ga_generations,
                    seed_fraction=selection_fraction,
                )
        self.solver = solver

    def plan_round(self, context: ControlContext) -> RoundPlan:
        """Produce the worker set and batch-size configuration for one round."""
        num_workers = context.per_sample_durations.shape[0]
        target = iid_distribution(context.label_distributions)

        # Lines 1-2: batch size regulation (Eq. 9).
        if self.enable_regulation:
            batch_sizes = regulate_batch_sizes(
                context.per_sample_durations, context.max_batch_size
            )
        else:
            batch_sizes = np.full(num_workers, context.base_batch_size, dtype=np.int64)

        # Lines 3-5: priorities and solver-driven selection under the
        # bandwidth constraint (the default solver is the paper's GA).
        priorities = selection_priorities(context.participation_counts)
        if self.enable_selection:
            from repro.selection.solvers import SelectionProblem

            selection = self.solver.solve(SelectionProblem(
                batch_sizes=batch_sizes,
                label_distributions=context.label_distributions,
                target_distribution=target,
                bandwidth_per_sample=context.bandwidth_per_sample,
                bandwidth_budget=context.bandwidth_budget,
                priorities=priorities,
                rng=context.rng,
                worker_ids=context.worker_ids,
            ))
            selected = selection.selected
            feasible = selection.feasible
        else:
            selected = np.arange(num_workers)
            feasible = True

        # Line 6: Lagrangian fine-tuning of batch sizes towards KL <= epsilon.
        if self.enable_finetune:
            batch_sizes = finetune_batch_sizes(
                batch_sizes,
                selected,
                context.label_distributions,
                target,
                context.per_sample_durations,
                kl_threshold=self.kl_threshold,
                max_batch_size=context.max_batch_size,
            )
            # Line 7: scale batch sizes to fill the bandwidth budget.
            batch_sizes = scale_to_bandwidth(
                batch_sizes,
                selected,
                context.bandwidth_per_sample,
                context.bandwidth_budget,
                context.max_batch_size,
            )

        phi = mixed_label_distribution(
            context.label_distributions, batch_sizes, selected
        )
        plan = RoundPlan(
            selected=[int(w) for w in selected],
            batch_sizes={int(w): int(batch_sizes[w]) for w in selected},
            merged_kl=kl_divergence(phi, target),
            info={"feasible": feasible},
        )
        return plan
