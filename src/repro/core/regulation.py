"""Batch-size fine-tuning under the IID constraint (Alg. 1 line 6, Eq. 14).

After selection, the merged label distribution may still miss the IID
target.  MergeSFL therefore re-adjusts the selected workers' batch sizes to
push ``KL(Phi^h || Phi_0)`` below the threshold ``epsilon`` while adding as
little extra waiting time as possible.  The paper casts this as a Lagrange
dual problem; this implementation solves the equivalent constrained
programme with SciPy's SLSQP on a smooth surrogate of Eq. 14 and falls back
to a penalty-based projected search when SLSQP fails.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.divergence import kl_divergence, mixed_label_distribution


def _surrogate_waiting_cost(
    new_sizes: np.ndarray, base_sizes: np.ndarray, durations: np.ndarray
) -> float:
    """Smooth surrogate of the added waiting time Delta(S^h) (Eq. 14)."""
    deltas = new_sizes - base_sizes
    return float(np.sum((deltas**2) * durations) / max(len(base_sizes), 1))


def finetune_batch_sizes(
    batch_sizes: np.ndarray,
    selected: np.ndarray | list[int],
    label_distributions: np.ndarray,
    target_distribution: np.ndarray,
    per_sample_durations: np.ndarray,
    kl_threshold: float,
    max_batch_size: int,
    min_batch_size: int = 1,
    penalty_steps: int = 200,
) -> np.ndarray:
    """Fine-tune the selected workers' batch sizes so KL <= threshold.

    Args:
        batch_sizes: Full-length batch-size vector from Eq. 9.
        selected: Worker indices in ``S^h``.
        label_distributions: ``(num_workers, num_classes)`` matrix of V_i.
        target_distribution: ``Phi_0``.
        per_sample_durations: Estimated ``mu_i + beta_i`` per worker.
        kl_threshold: ``epsilon``.
        max_batch_size: Per-worker cap ``D``.
        min_batch_size: Per-worker floor.
        penalty_steps: Iterations of the fallback penalty search.

    Returns:
        A copy of ``batch_sizes`` with the selected entries adjusted
        (integers within ``[min_batch_size, max_batch_size]``).
    """
    result = np.asarray(batch_sizes, dtype=np.float64).copy()
    selected = np.asarray(list(selected), dtype=np.int64)
    if selected.size == 0:
        return result.astype(np.int64)
    label_distributions = np.atleast_2d(np.asarray(label_distributions))
    durations = np.asarray(per_sample_durations, dtype=np.float64)[selected]
    base = result[selected].copy()

    current_phi = mixed_label_distribution(label_distributions, result, selected)
    if kl_divergence(current_phi, target_distribution) <= kl_threshold:
        return result.astype(np.int64)

    sub_dists = label_distributions[selected]

    def kl_of(sizes: np.ndarray) -> float:
        weights = np.clip(sizes, 1e-6, None)
        mixed = (weights[:, None] * sub_dists).sum(axis=0) / weights.sum()
        return kl_divergence(mixed, target_distribution)

    def objective(sizes: np.ndarray) -> float:
        return _surrogate_waiting_cost(sizes, base, durations)

    bounds = [(float(min_batch_size), float(max_batch_size))] * selected.size
    constraints = [{"type": "ineq", "fun": lambda s: kl_threshold - kl_of(s)}]
    solution = None
    try:
        fit = optimize.minimize(
            objective,
            x0=base,
            method="SLSQP",
            bounds=bounds,
            constraints=constraints,
            options={"maxiter": 200, "ftol": 1e-9},
        )
        if fit.success and kl_of(fit.x) <= kl_threshold * 1.05:
            solution = fit.x
    except (ValueError, RuntimeError):
        solution = None

    if solution is None:
        # Penalty fallback: coordinate descent that shrinks the batch of the
        # worker whose label distribution deviates most from the target.
        sizes = base.copy()
        for __ in range(penalty_steps):
            if kl_of(sizes) <= kl_threshold:
                break
            # Heuristic: shrinking the batch of the worker whose label
            # distribution deviates most from the target reduces the mixture KL.
            deviations = np.asarray([
                kl_divergence(dist, target_distribution) for dist in sub_dists
            ])
            order = np.argsort(-deviations)
            adjusted = False
            for idx in order:
                if sizes[idx] > min_batch_size:
                    sizes[idx] -= 1.0
                    adjusted = True
                    break
            if not adjusted:
                break
        solution = sizes

    result[selected] = np.clip(np.round(solution), min_batch_size, max_batch_size)
    return result.astype(np.int64)
