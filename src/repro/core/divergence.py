"""Label-distribution divergence (Eq. 11-12 of the paper).

Feature merging aims at a merged mini-batch whose label distribution
``Phi^h`` is close to the IID distribution ``Phi_0``; closeness is measured
with the KL divergence.
"""

from __future__ import annotations

import numpy as np

from repro.utils.numeric import normalize_distribution

_EPS = 1e-12


def kl_divergence(phi: np.ndarray, phi0: np.ndarray) -> float:
    """KL(phi || phi0) with additive smoothing for empty classes (Eq. 12)."""
    phi = normalize_distribution(np.asarray(phi, dtype=np.float64))
    phi0 = normalize_distribution(np.asarray(phi0, dtype=np.float64))
    if phi.shape != phi0.shape:
        raise ValueError(f"distribution shapes differ: {phi.shape} vs {phi0.shape}")
    phi = phi + _EPS
    phi0 = phi0 + _EPS
    phi = phi / phi.sum()
    phi0 = phi0 / phi0.sum()
    return float(np.sum(phi * np.log(phi / phi0)))


def iid_distribution(label_distributions: np.ndarray) -> np.ndarray:
    """The reference IID distribution ``Phi_0 = (1/N) * sum_i V_i``."""
    matrix = np.atleast_2d(np.asarray(label_distributions, dtype=np.float64))
    return normalize_distribution(matrix.mean(axis=0))


def mixed_label_distribution(
    label_distributions: np.ndarray,
    batch_sizes: np.ndarray,
    selected: np.ndarray | list[int],
) -> np.ndarray:
    """Label distribution of the merged feature sequence (Eq. 11).

    Args:
        label_distributions: ``(num_workers, num_classes)`` matrix of V_i.
        batch_sizes: Per-worker batch sizes ``d_i``.
        selected: Indices of the workers in the worker set ``S^h``.

    Returns:
        ``Phi^h``: the batch-size-weighted mixture of the selected workers'
        label distributions.
    """
    selected = np.asarray(list(selected), dtype=np.int64)
    if selected.size == 0:
        num_classes = np.asarray(label_distributions).shape[1]
        return np.full(num_classes, 1.0 / num_classes)
    matrix = np.asarray(label_distributions, dtype=np.float64)[selected]
    weights = np.asarray(batch_sizes, dtype=np.float64)[selected]
    if np.any(weights < 0):
        raise ValueError("batch sizes must be non-negative")
    if weights.sum() <= 0:
        return normalize_distribution(matrix.mean(axis=0))
    mixed = (weights[:, None] * matrix).sum(axis=0) / weights.sum()
    return normalize_distribution(mixed)
