"""MergeSFL: the full system (control module + training module).

:class:`MergeSFLPolicy` wraps :class:`~repro.core.controller.ControlModule`
with the engine's policy interface; :class:`MergeSFL` is a small facade that
owns the engine and exposes ``run()``.  The ablation variants of Fig. 11
(``w/o FM`` and ``w/o BR``) are expressed through the two flags.
"""

from __future__ import annotations

import numpy as np

from repro.api.algorithm import EngineBackedAlgorithm
from repro.api.registry import register_algorithm, register_policy
from repro.config import ExperimentConfig
from repro.core.batching import regulate_batch_sizes
from repro.core.controller import ControlContext, ControlModule, RoundPlan
from repro.core.engine import SplitTrainingEngine
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.nn.split import SplitModel
from repro.simulation.cluster import Cluster


class MergeSFLPolicy:
    """Alg. 1 as an engine policy, with ablation switches.

    Args:
        config: Experiment configuration (GA and threshold knobs are read
            from it).
        enable_merging: Feature merging on the PS (``False`` reproduces the
            ``MergeSFL w/o FM`` ablation).
        enable_regulation: Batch-size regulation (``False`` reproduces the
            ``MergeSFL w/o BR`` ablation, which assigns every selected
            worker the average of the regulated batch sizes).
        use_greedy_selection: Replace the GA with the greedy selector
            (shorthand for ``selection_solver=GreedySolver()``).
        selection_solver: Worker-selection solver; the default resolves
            ``config.selector`` from
            :data:`~repro.api.registry.SELECTION_SOLVERS` (``"ga"`` -- the
            paper's GA -- unless configured otherwise).
    """

    def __init__(
        self,
        config: ExperimentConfig,
        enable_merging: bool = True,
        enable_regulation: bool = True,
        use_greedy_selection: bool = False,
        selection_solver=None,
    ) -> None:
        self.merge_features = enable_merging
        self.aggregate_every_iteration = False
        self.enable_regulation = enable_regulation
        if selection_solver is None:
            from repro.selection.solvers import build_selection_solver

            selection_solver = build_selection_solver(
                config, name="greedy" if use_greedy_selection else None
            )
        #: The engine reads this to serialise stateful solvers through its
        #: ``state_dict`` (see ``SplitTrainingEngine.state_dict``).
        self.selection_solver = selection_solver
        self._control = ControlModule(
            kl_threshold=config.kl_threshold,
            enable_regulation=True,
            enable_selection=True,
            enable_finetune=enable_merging,
            ga_population=config.ga_population,
            ga_generations=config.ga_generations,
            selection_fraction=config.selection_fraction,
            use_greedy=use_greedy_selection,
            solver=selection_solver,
        )

    def plan_round(self, context: ControlContext) -> RoundPlan:
        """Run Alg. 1; apply the w/o-BR averaging when regulation is disabled."""
        plan = self._control.plan_round(context)
        if not self.enable_regulation:
            regulated = regulate_batch_sizes(
                context.per_sample_durations, context.max_batch_size
            )
            average = max(1, int(round(float(np.mean(regulated)))))
            plan = RoundPlan(
                selected=plan.selected,
                batch_sizes={worker: average for worker in plan.selected},
                merged_kl=plan.merged_kl,
                info=dict(plan.info, identical_batch=average),
            )
        return plan


class MergeSFL(EngineBackedAlgorithm):
    """End-to-end MergeSFL system: control module + training module."""

    def __init__(
        self,
        config: ExperimentConfig,
        split: SplitModel,
        workers: list[SplitWorker],
        cluster: Cluster,
        data: TrainTestSplit,
        enable_merging: bool = True,
        enable_regulation: bool = True,
        bandwidth_budget_override: float | None = None,
        executor=None,
        selection_solver=None,
    ) -> None:
        self.policy = MergeSFLPolicy(
            config,
            enable_merging=enable_merging,
            enable_regulation=enable_regulation,
            selection_solver=selection_solver,
        )
        self.engine = SplitTrainingEngine(
            config=config,
            split=split,
            workers=workers,
            cluster=cluster,
            data=data,
            policy=self.policy,
            bandwidth_budget_override=bandwidth_budget_override,
            executor=executor,
        )

    @classmethod
    def from_components(cls, components, **flags) -> "MergeSFL":
        """Build from :class:`~repro.api.components.ExperimentComponents`."""
        return cls(
            config=components.config,
            split=components.split,
            workers=components.worker_pool(),
            cluster=components.cluster,
            data=components.data,
            bandwidth_budget_override=components.bandwidth_budget,
            executor=components.executor,
            selection_solver=components.selection_solver(),
            **flags,
        )


@register_algorithm("mergesfl", description="MergeSFL: feature merging + batch-size regulation (Alg. 1)")
def _build_mergesfl(components) -> MergeSFL:
    return MergeSFL.from_components(components)


@register_algorithm("mergesfl_no_fm", description="MergeSFL ablation without feature merging (Fig. 11)")
def _build_mergesfl_no_fm(components) -> MergeSFL:
    return MergeSFL.from_components(components, enable_merging=False)


@register_algorithm("mergesfl_no_br", description="MergeSFL ablation without batch-size regulation (Fig. 11)")
def _build_mergesfl_no_br(components) -> MergeSFL:
    return MergeSFL.from_components(components, enable_regulation=False)


@register_policy("mergesfl", kind="split_control",
                 description="Alg. 1 control policy with ablation switches")
def _build_mergesfl_policy(config: ExperimentConfig, **overrides) -> MergeSFLPolicy:
    return MergeSFLPolicy(config, **overrides)
