"""Elastic rounds: over-selection, first-k-of-n aggregation and rejoin.

The synchronous engines assume every selected worker returns its update;
under churn that either stalls the round (stragglers) or fails it
(dropouts, dead executor processes).  The :class:`ElasticController` makes
rounds *elastic* instead:

* **over-selection** -- the planned cohort is padded to
  ``ceil(over_select_factor * K)`` workers (lowest participation first),
  so the expected number of survivors still matches the plan;
* **first-k-of-n aggregation** -- at the deadline the server aggregates
  whatever arrived; a round only yields no update when fewer than
  ``min_cohort_fraction`` of the planned cohort completed;
* **rejoin** -- a missing worker's late update is folded into a later
  round's aggregate (as ``current_global + cached_delta``, via a
  :class:`~repro.population.cache.DeltaCache`) as long as its staleness
  stays within ``rejoin_staleness_bound`` rounds.

Which workers drop or straggle each round comes from the deterministic
:class:`~repro.simulation.churn.ChurnModel`; engine-level recovery from a
dead executor process reports real losses through
:meth:`ElasticController.record_death`.  The controller is pure parent-side
state and checkpoints with the engine, so elastic runs resume bit-exactly.

With ``config.elastic`` false, :func:`build_elastic_controller` returns
``None`` and the engines take their historical code paths unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.population.cache import DeltaCache
from repro.simulation.churn import ChurnModel, RoundChurn

#: Delta-cache capacity used for rejoin folding when the experiment does
#: not configure a population cache (``population_cache == 0``).
DEFAULT_REJOIN_CACHE = 64


@dataclass
class ElasticRound:
    """Per-round elastic bookkeeping threaded through the stage bodies.

    Attributes:
        round_index: The round this state belongs to.
        planned: The (possibly over-selected) cohort the round started with.
        churn: The round's simulated churn draw.
        dropped: Workers whose update missed the round -- simulated churn
            plus any real executor deaths reported during the round.
        completed: Workers whose update made the round's aggregate.
        rejoined: Workers whose *earlier* update was folded in this round.
        folded: Whether rejoin folding already ran (it runs once per round
            even when a policy aggregates every local iteration).
        no_update: Whether the round fell below the cohort quorum and left
            the global bottom model unchanged.
    """

    round_index: int
    planned: list[int]
    churn: RoundChurn
    dropped: list[int] = field(default_factory=list)
    completed: list[int] = field(default_factory=list)
    rejoined: list[int] = field(default_factory=list)
    folded: bool = False
    no_update: bool = False

    @property
    def dropout_rate(self) -> float:
        """Fraction of the planned cohort whose update missed the round."""
        if not self.planned:
            return 0.0
        return len(self.dropped) / len(self.planned)

    @property
    def effective_cohort(self) -> int:
        """Number of updates in the round's aggregate (completed + rejoined)."""
        return len(self.completed) + len(self.rejoined)


class ElasticController:
    """Round elasticity shared by the split and full-model engines."""

    def __init__(self, config, cluster=None) -> None:
        self.over_select_factor = float(config.over_select_factor)
        self.min_cohort_fraction = float(config.min_cohort_fraction)
        self.rejoin_staleness_bound = int(config.rejoin_staleness_bound)
        dropout_rate = config.dropout_rate
        class_rates = config.extras.get("device_dropout_rates")
        if class_rates and cluster is not None:
            # Per-device-class churn: a worker's dropout probability comes
            # from its device profile (e.g. {"jetson_tx2": 0.3}), falling
            # back to the scalar rate for unlisted classes.  Resolved
            # lazily per worker id so lazy clusters only materialise the
            # devices churn actually asks about.
            rates = {str(name): float(rate) for name, rate in class_rates.items()}
            base = float(config.dropout_rate)

            def dropout_rate(worker_id, _cluster=cluster, _rates=rates, _base=base):
                return _rates.get(_cluster[worker_id].profile.name, _base)

        self.churn = ChurnModel(
            dropout_rate=dropout_rate,
            straggler_deadline=config.straggler_deadline,
            rejoin_staleness_bound=config.rejoin_staleness_bound,
            seed=config.seed,
        )
        capacity = (
            config.population_cache
            if config.population_cache > 0
            else DEFAULT_REJOIN_CACHE
        )
        #: Deltas of every cohort member against the round's install-time
        #: global model; this is what reconstructs a rejoining worker's
        #: late update against the *current* global.  Separate from any
        #: lazy-population cache so population hit/miss metrics stay put.
        self.cache = DeltaCache(capacity)
        #: Missing workers awaiting rejoin:
        #: ``{worker_id: {"origin", "arrival", "weight"}}``.
        self.pending: dict[int, dict[str, float]] = {}

    # -- planning -------------------------------------------------------------
    def min_cohort(self, planned_count: int) -> int:
        """Smallest completed cohort that still updates the global model."""
        return max(1, math.ceil(self.min_cohort_fraction * planned_count))

    def _backups(self, selected, pool, candidates, extra: int) -> list[int]:
        """Backup worker ids: lowest participation first, then lowest id."""
        if candidates is not None:
            universe = np.asarray(candidates, dtype=np.int64)
        else:
            universe = np.arange(len(pool), dtype=np.int64)
        chosen = {int(worker_id) for worker_id in selected}
        available = np.asarray(
            [wid for wid in universe if int(wid) not in chosen], dtype=np.int64
        )
        if available.size == 0:
            return []
        counts = pool.participation_counts(available)
        order = np.lexsort((available, counts))
        return [int(available[index]) for index in order[:extra]]

    def over_select(self, plan, pool, candidates, base_batch_size: int):
        """Pad a split-round plan to ``ceil(f * K)`` workers.

        Backups train at the base batch size (the policy never planned
        them, so there is no regulated size to reuse).  At factor 1.0 the
        plan is returned untouched, keeping neutral elasticity bit-exact.
        """
        from repro.core.controller import RoundPlan

        target = math.ceil(self.over_select_factor * len(plan.selected))
        extra = target - len(plan.selected)
        if extra <= 0:
            return plan
        backups = self._backups(plan.selected, pool, candidates, extra)
        if not backups:
            return plan
        batch_sizes = dict(plan.batch_sizes)
        for worker_id in backups:
            batch_sizes[worker_id] = int(base_batch_size)
        return RoundPlan(
            selected=sorted(list(plan.selected) + backups),
            batch_sizes=batch_sizes,
            merged_kl=plan.merged_kl,
            info=dict(plan.info, over_selected=backups),
        )

    def over_select_ids(self, selected, pool, candidates) -> list[int]:
        """Pad an FL-round id list to ``ceil(f * K)`` workers."""
        selected = [int(worker_id) for worker_id in selected]
        target = math.ceil(self.over_select_factor * len(selected))
        extra = target - len(selected)
        if extra <= 0:
            return selected
        return sorted(selected + self._backups(selected, pool, candidates, extra))

    # -- round lifecycle ------------------------------------------------------
    def begin_round(
        self, round_index: int, planned_ids, durations
    ) -> ElasticRound:
        """Draw the round's churn once, against the planned cohort.

        Called exactly once per round -- a death-recovery re-run reuses the
        same state, so the churn draw (and hence the trajectory of every
        healthy worker) does not depend on whether a process died.
        """
        ids = [int(worker_id) for worker_id in planned_ids]
        churn = self.churn.round_churn(round_index, ids, durations)
        return ElasticRound(
            round_index=round_index,
            planned=ids,
            churn=churn,
            dropped=list(churn.missing),
        )

    def record_death(self, round_state: ElasticRound, worker_ids) -> None:
        """Mark workers lost to a dead executor process as dropped."""
        known = set(round_state.dropped)
        for worker_id in worker_ids:
            worker_id = int(worker_id)
            if worker_id not in known:
                round_state.dropped.append(worker_id)
                known.add(worker_id)
        round_state.dropped.sort()

    def apply_aggregate(
        self,
        round_state: ElasticRound,
        worker_ids,
        states,
        weights,
        reference,
    ):
        """First-k-of-n filter plus rejoin folding for one aggregation.

        Returns the ``(states, weights)`` actually entering the aggregate,
        or ``None`` when the completed cohort misses the quorum (the round
        then leaves the global model unchanged; pending rejoins are kept
        for a later round).  Every cohort member's state -- including the
        missing ones, whose local compute still happened in simulation --
        is cached as a delta so a later rejoin can be reconstructed.
        """
        worker_ids = [int(worker_id) for worker_id in worker_ids]
        dropped = set(round_state.dropped)
        completed, kept_states, kept_weights = [], [], []
        for worker_id, state, weight in zip(worker_ids, states, weights):
            self.cache.put(worker_id, state, reference)
            if worker_id in dropped:
                continue
            completed.append(worker_id)
            kept_states.append(state)
            kept_weights.append(weight)
        round_state.completed = completed
        # A completed update supersedes any older pending rejoin.
        for worker_id in completed:
            self.pending.pop(worker_id, None)
        delays = round_state.churn.rejoin_delays
        for worker_id, weight in zip(worker_ids, weights):
            if worker_id in dropped and worker_id in delays:
                self.pending[worker_id] = {
                    "origin": round_state.round_index,
                    "arrival": round_state.round_index + delays[worker_id],
                    "weight": float(weight),
                }
        if len(completed) < self.min_cohort(len(round_state.planned)):
            round_state.no_update = True
            return None
        extra_states, extra_weights = self._fold_rejoins(round_state, reference)
        return kept_states + extra_states, kept_weights + extra_weights

    def _fold_rejoins(self, round_state: ElasticRound, reference):
        """Consume arrived rejoins once per round; discard the too-stale."""
        if round_state.folded:
            return [], []
        round_state.folded = True
        states, weights, rejoined = [], [], []
        for worker_id in sorted(self.pending):
            entry = self.pending[worker_id]
            if entry["arrival"] > round_state.round_index:
                continue
            del self.pending[worker_id]
            staleness = round_state.round_index - entry["origin"]
            if staleness > self.rejoin_staleness_bound:
                continue
            state = self.cache.reconstruct(worker_id, reference)
            if state is None:
                # The delta was evicted before the worker rejoined; there
                # is nothing meaningful left to fold in.
                continue
            states.append(state)
            weights.append(float(entry["weight"]))
            rejoined.append(worker_id)
        round_state.rejoined = rejoined
        return states, weights

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Pending rejoins plus the rejoin delta cache."""
        return {
            "pending": [
                [
                    int(worker_id),
                    int(entry["origin"]),
                    int(entry["arrival"]),
                    float(entry["weight"]),
                ]
                for worker_id, entry in sorted(self.pending.items())
            ],
            "cache": self.cache.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.pending = {
            int(worker_id): {
                "origin": int(origin),
                "arrival": int(arrival),
                "weight": float(weight),
            }
            for worker_id, origin, arrival, weight in state.get("pending", [])
        }
        if state.get("cache") is not None:
            self.cache.load_state_dict(state["cache"])


def build_elastic_controller(config, cluster=None) -> ElasticController | None:
    """An :class:`ElasticController` when ``config.elastic``, else ``None``.

    ``cluster`` (when given) lets ``extras["device_dropout_rates"]`` map
    device-class names to per-worker dropout rates; without it the scalar
    ``config.dropout_rate`` applies uniformly.
    """
    if not getattr(config, "elastic", False):
        return None
    return ElasticController(config, cluster)
