"""The split training engine (the paper's training module).

:class:`SplitTrainingEngine` executes communication rounds for every SFL
variant in the repository.  Per-round decisions (worker set, batch sizes)
come from a :class:`ControlPolicy`; the engine handles the mechanics that
all variants share: bottom-model distribution, ``tau`` local iterations of
split forward/backward propagation (with or without feature merging),
weighted bottom-model aggregation, simulated-clock accounting, traffic
accounting and evaluation.

The engine implements the :class:`~repro.api.algorithm.Algorithm`
interface: rounds execute one at a time through ``step_round()`` with a
monotonic round index (repeated ``run()`` calls extend the same run), and
``state_dict()`` / ``load_state_dict()`` capture every mutable piece of
training state so a :class:`~repro.api.session.Session` can checkpoint and
resume bit-exactly.

A round is an explicit stage sequence (plan -> install -> bottom-forward ->
merge -> top-update -> backward-dispatch -> local-step -> aggregate): the
engine supplies the stage bodies as :class:`~repro.parallel.pipeline.SplitRoundOps`
and a :class:`~repro.parallel.pipeline.PipelineScheduler` (picked by
``config.pipeline``) decides the execution order -- strictly sequential,
double-buffered across iterations, or relaxed under a bounded staleness.
The stage bodies bind *artifact versions*, not an implicit order: the
engine's parent-side accounting and even the next round's PLAN are handed
to the scheduler as callables it may run inside the aggregate window
(cross-round pipelining), and a plan prefetched that way is serialised
into ``state_dict`` so checkpoint/resume stays exact at any staleness.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.api.algorithm import Algorithm
from repro.config import ExperimentConfig
from repro.core.controller import ControlContext, RoundPlan
from repro.core.elastic import (
    ElasticController,
    ElasticRound,
    build_elastic_controller,
)
from repro.core.server import SplitServer
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.exceptions import ConfigurationError, ExecutorDeathError
from repro.metrics.history import History, RoundRecord, wire_round_delta
from repro.nn.models import estimate_forward_flops
from repro.nn.module import Sequential
from repro.nn.serialization import model_size_bytes
from repro.nn.split import SplitModel, candidate_split_depths
from repro.parallel.base import Executor
from repro.parallel.pipeline import (
    PipelineScheduler,
    RoundReport,
    SplitRoundOps,
    build_pipeline,
)
from repro.parallel.serial import SerialExecutor
from repro.population.pool import WorkerPool, as_worker_pool
from repro.simulation.cluster import Cluster, LazyCluster
from repro.simulation.estimator import BandwidthEstimator, WorkerStateEstimator
from repro.simulation.timing import (
    average_waiting_time,
    elastic_round_duration,
)
from repro.simulation.traffic import TrafficMeter, feature_bytes
from repro.splitpoint import SplitContext, build_split_policy
from repro.utils.logging import get_logger
from repro.utils.rng import spawned_rng

logger = get_logger("core.engine")

#: Clip bounds for the batch-size-proportional worker learning-rate scale
#: (Section IV-B): a worker whose regulated batch is much smaller/larger
#: than ``base_batch_size`` still steps within [0.25x, 4x] of the round's
#: learning rate, keeping stragglers and sprinters inside the stable
#: step-size region.
WORKER_LR_SCALE_BOUNDS = (0.25, 4.0)

#: Clip bounds for the optional merged-top learning-rate boost
#: (``extras['top_lr_scale']``).  The merged batch grows with the fleet, so
#: linear scaling may warrant a larger boost than any single worker's
#: batch-proportional scale -- hence the wider upper bound.
TOP_LR_SCALE_BOUNDS = (0.25, 16.0)


class ControlPolicy(Protocol):
    """Per-round decision maker plugged into the engine."""

    #: Whether the PS merges features before updating the top model.
    merge_features: bool
    #: Whether bottom models are aggregated after every local iteration
    #: (SplitFed) instead of once per round.
    aggregate_every_iteration: bool

    def plan_round(self, context: ControlContext) -> RoundPlan:
        """Return the worker set and batch sizes for the round."""
        ...  # pragma: no cover - protocol definition


class SplitTrainingEngine(Algorithm):
    """Runs split federated training under a pluggable control policy."""

    def __init__(
        self,
        config: ExperimentConfig,
        split: SplitModel,
        workers: "list[SplitWorker] | WorkerPool",
        cluster: "Cluster | LazyCluster",
        data: TrainTestSplit,
        policy: ControlPolicy,
        bandwidth_budget_override: float | None = None,
        executor: Executor | None = None,
        pipeline: PipelineScheduler | None = None,
        elastic: ElasticController | None = None,
    ) -> None:
        if split is None:
            raise ConfigurationError(
                f"algorithm {config.algorithm!r} trains a split model, but "
                f"model {config.model!r} declares no split point; register "
                f"it with split_after_weighted metadata"
            )
        self.config = config
        self.split = split
        self.pool = as_worker_pool(workers)
        self.cluster = cluster
        self.data = data
        self.policy = policy
        self.executor = executor if executor is not None else SerialExecutor()
        self.pipeline = pipeline if pipeline is not None else build_pipeline(config)
        #: Round elasticity (over-selection, first-k-of-n, rejoin); ``None``
        #: keeps the historical synchronous code paths untouched.
        self._elastic = (
            elastic if elastic is not None
            else build_elastic_controller(config, cluster)
        )

        self.server = SplitServer(
            bottom_template=split.bottom,
            top_model=split.top,
            learning_rate=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            max_grad_norm=config.max_grad_norm,
        )
        self.estimator = WorkerStateEstimator(
            num_workers=len(self.pool), alpha=config.estimator_alpha
        )
        # Delta-cache capture/reconstruction needs the round's global bottom.
        self.pool.bind_bottom_source(lambda: self.server.global_bottom)
        self.traffic = TrafficMeter()
        self.history = History(algorithm=config.algorithm)

        # Static quantities of the split model.
        input_shape = data.feature_shape
        self.bottom_flops = estimate_forward_flops(self.server.global_bottom, input_shape)
        sample_feature = self.server.global_bottom.forward(
            np.zeros((1, *input_shape), dtype=np.float64)
        )
        self.feature_shape = tuple(sample_feature.shape[1:])
        #: Bytes for one sample's feature upload plus gradient download.
        self.feature_exchange_bytes = 2 * feature_bytes(self.feature_shape, 1)
        self.bottom_model_bytes = model_size_bytes(self.server.global_bottom)

        #: c in Eq. 10, expressed in megabits per sample.
        self.bandwidth_per_sample = self.feature_exchange_bytes * 8.0 / 1e6
        nominal = (
            bandwidth_budget_override
            if bandwidth_budget_override is not None
            else config.bandwidth_budget_mbps
        )
        self.bandwidth_estimator = BandwidthEstimator(initial_mbps=nominal)
        self._budget_scale = nominal / cluster.nominal_budget_mbps

        #: Per-worker split-point policy; ``None`` for trivial (uniform)
        #: policies, in which case none of the multi-depth machinery below
        #: is built and every code path stays the historical global cut.
        self._split_policy = build_split_policy(config)
        self._depth_candidates: list[int] | None = None
        if self._split_policy is not None:
            self._build_depth_tables(input_shape)

        #: Depth-aware selection: hand the control policy a per-candidate
        #: ingress-cost vector priced at each worker's current split depth
        #: instead of the global-cut scalar.  Workers with no depth yet
        #: price at the global cut, so round zero matches the scalar path.
        self._depth_aware = bool(config.extras.get("depth_aware_selection", False))
        if self._depth_aware and self._split_policy is None:
            raise ConfigurationError(
                "extras['depth_aware_selection'] requires a non-uniform "
                "split_policy; under the uniform global cut every worker "
                "already shares one exchange size"
            )
        self._last_depths: dict[int, int] = {}

        #: Root seed of the per-round RNG streams; generators are derived
        #: lazily per round index so the round count is unbounded.
        self._round_seed = config.seed + 9173
        self._round_index = 0
        self._clock = 0.0
        self._current_lr = config.learning_rate
        #: A plan prefetched by a relaxed scheduler during the previous
        #: round's aggregate window: ``(round_index, plan)`` or ``None``.
        #: Planning mutates the simulated cluster and the state estimator,
        #: so the prefetched plan is part of the checkpointed state.
        self._pending_plan: tuple[int, RoundPlan] | None = None

    def _build_depth_tables(self, input_shape: tuple[int, ...]) -> None:
        """Per-depth cost tables for the split-point policy's context.

        Probes a *clone* of the bottom so the forward passes (layer caches,
        dropout RNG draws) cannot perturb the real global model.  Only runs
        when a non-trivial policy is configured.
        """
        probe = self.server.global_bottom.clone()
        candidates = candidate_split_depths(probe)
        extras = self.config.extras
        low = int(extras.get("split_depth_min", 1))
        high = int(extras.get("split_depth_max", len(probe)))
        bounded = [depth for depth in candidates if low <= depth <= high]
        self._depth_candidates = bounded or [len(probe)]
        self._depth_flops: dict[int, float] = {}
        self._depth_exchange_bytes: dict[int, int] = {}
        self._depth_model_bytes: dict[int, int] = {}
        for depth in self._depth_candidates:
            prefix = Sequential(probe.layers[:depth]).clone()
            self._depth_flops[depth] = estimate_forward_flops(prefix, input_shape)
            sample = prefix.forward(np.zeros((1, *input_shape), dtype=np.float64))
            shape = tuple(sample.shape[1:])
            self._depth_exchange_bytes[depth] = 2 * feature_bytes(shape, 1)
            self._depth_model_bytes[depth] = model_size_bytes(prefix)

    # -- public API -----------------------------------------------------------
    @property
    def workers(self) -> list[SplitWorker]:
        """The eager worker list (raises for lazily-materialised populations)."""
        return self.pool.eager_workers

    def step_round(self) -> RoundRecord:
        """Execute one communication round and return its record."""
        self._run_round(self._round_index)
        self._round_index += 1
        return self.history.records[-1]

    @property
    def rounds_completed(self) -> int:
        """Number of communication rounds executed so far."""
        return self._round_index

    def global_model(self) -> Sequential:
        """The current global model (bottom + top), as a single Sequential."""
        combined = Sequential(
            list(self.server.global_bottom.clone().layers)
            + list(self.server.top.clone().layers)
        )
        combined.eval()
        return combined

    def drain(self) -> None:
        """Wait for in-flight asynchronous dispatch (pipelined rounds)."""
        self.executor.drain()

    def close(self) -> None:
        """Release executor resources (worker processes, pools)."""
        self.executor.close()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Every mutable piece of training state, for checkpoint/resume.

        Drains the executor first, then serialises the one cross-round
        in-flight artifact a relaxed schedule leaves behind -- the
        prefetched next-round plan -- so resume is exact at any staleness.
        """
        self.drain()
        pending_plan = None
        if self._pending_plan is not None:
            pending_plan = {
                "round_index": int(self._pending_plan[0]),
                "plan": self._pending_plan[1].to_dict(),
            }
        state = {
            "round_index": self._round_index,
            "clock": self._clock,
            "current_lr": self._current_lr,
            "pending_plan": pending_plan,
            "history": self.history.to_dict(),
            "server": self.server.state_dict(),
            "estimator": self.estimator.state_dict(),
            "bandwidth_estimator": self.bandwidth_estimator.state_dict(),
            "traffic": self.traffic.state_dict(),
            "cluster": self.cluster.state_dict(),
            "workers": self.pool.workers_state(),
            "elastic": (
                self._elastic.state_dict() if self._elastic is not None else None
            ),
            "codec": self.executor.codec_state(),
        }
        if self._split_policy is not None:
            # Present only under a non-trivial policy, so uniform
            # checkpoints keep their historical format byte for byte.
            state["splitpoint"] = self._split_policy.state_dict()
        solver = getattr(self.policy, "selection_solver", None)
        if solver is not None and getattr(solver, "stateful", False):
            # Same contract as "splitpoint": only stateful solvers add the
            # key, so default (ga) checkpoints keep the historical format.
            state["selection"] = solver.state_dict()
        if self._depth_aware:
            state["selection_depths"] = {
                str(worker_id): int(depth)
                for worker_id, depth in self._last_depths.items()
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore training state captured by :meth:`state_dict`."""
        self.pool.load_workers_state(state["workers"])
        self._round_index = int(state["round_index"])
        self._clock = float(state["clock"])
        self._current_lr = float(state["current_lr"])
        pending_plan = state.get("pending_plan")
        self._pending_plan = None
        if pending_plan is not None:
            self._pending_plan = (
                int(pending_plan["round_index"]),
                RoundPlan.from_dict(pending_plan["plan"]),
            )
        self.history = History.from_dict(state["history"])
        self.server.load_state_dict(state["server"])
        self.estimator.load_state_dict(state["estimator"])
        self.bandwidth_estimator.load_state_dict(state["bandwidth_estimator"])
        self.traffic.load_state_dict(state["traffic"])
        self.cluster.load_state_dict(state["cluster"])
        if self._elastic is not None and state.get("elastic") is not None:
            self._elastic.load_state_dict(state["elastic"])
        self.executor.load_codec_state(state.get("codec"))
        if self._split_policy is not None and state.get("splitpoint") is not None:
            self._split_policy.load_state_dict(state["splitpoint"])
        solver = getattr(self.policy, "selection_solver", None)
        if solver is not None and state.get("selection") is not None:
            solver.load_state_dict(state["selection"])
        if self._depth_aware and state.get("selection_depths") is not None:
            self._last_depths = {
                int(worker_id): int(depth)
                for worker_id, depth in state["selection_depths"].items()
            }

    # -- round mechanics ---------------------------------------------------------
    def _observe_states(self, candidates: np.ndarray | None = None) -> None:
        """Refresh the moving-average state estimates from the current devices.

        With a candidate pool, only the round's candidates are observed --
        the moving averages of untouched workers simply stay put, so the
        per-round cost is the candidate count, not the population.
        """
        if candidates is None:
            mus = self.cluster.compute_times(self.bottom_flops)
            betas = self.cluster.comm_times(self.feature_exchange_bytes)
            self.estimator.update_all(mus, betas)
        else:
            mus = self.cluster.compute_times_for(candidates, self.bottom_flops)
            betas = self.cluster.comm_times_for(
                candidates, self.feature_exchange_bytes
            )
            self.estimator.update_ids(candidates, mus, betas)

    def _make_context(
        self, round_index: int, candidates: np.ndarray | None = None
    ) -> ControlContext:
        if candidates is None:
            durations = self.estimator.per_sample_duration()
        else:
            durations = self.estimator.per_sample_duration_for(candidates)
        budget = self.bandwidth_estimator.estimate()
        bandwidth: "float | np.ndarray" = self.bandwidth_per_sample
        if self._depth_aware:
            bandwidth = self._depth_aware_bandwidth(candidates)
        return ControlContext(
            round_index=round_index,
            per_sample_durations=durations,
            label_distributions=self.pool.label_distributions(candidates),
            participation_counts=self.pool.participation_counts(candidates),
            bandwidth_budget=budget,
            bandwidth_per_sample=bandwidth,
            max_batch_size=self.config.max_batch_size,
            base_batch_size=self.config.base_batch_size,
            rng=spawned_rng(self._round_seed, round_index),
            worker_ids=candidates,
        )

    def _depth_aware_bandwidth(self, candidates: np.ndarray | None) -> np.ndarray:
        """Per-candidate ingress cost (Mb/sample) at each worker's depth.

        Reads the depth the split-point policy assigned the worker the last
        time it participated; workers with no depth yet (round zero, or
        never selected) price at the uniform global cut, so the vector
        degenerates to the historical scalar until depths diverge.
        """
        if candidates is None:
            ids = range(len(self.pool))
        else:
            ids = [int(worker_id) for worker_id in candidates]
        costs = [
            self._depth_exchange_bytes.get(
                self._last_depths.get(int(worker_id), -1),
                self.feature_exchange_bytes,
            ) * 8.0 / 1e6
            for worker_id in ids
        ]
        return np.asarray(costs, dtype=np.float64)

    def _run_round(self, round_index: int) -> None:
        config = self.config
        wire_before = self.executor.transport_stats()
        plan, selected_workers = self._stage_plan(round_index)
        # Elastic rounds draw their churn once, up front, against the
        # planned cohort; a death-recovery re-run reuses the same draw.
        elastic_state: ElasticRound | None = None
        if self._elastic is not None:
            elastic_state = self._elastic.begin_round(
                round_index, plan.selected, self._worker_durations(plan)
            )
        accounting: dict = {}

        def account() -> None:
            # ACCOUNT: participation, simulated time/traffic and the
            # bandwidth observation.  Reads the plan and the *round-r*
            # cluster state only, so a relaxed scheduler may run it inside
            # the aggregate window (before any next-round planning
            # advances the cluster); idempotent because the engine invokes
            # it unconditionally afterwards for the exact schedulers.
            if accounting:
                return
            for worker in selected_workers:
                worker.participation_count += 1
            duration, waiting = self._account_time_and_traffic(
                plan, elastic_state
            )
            self._clock += duration
            self.bandwidth_estimator.observe(
                self.cluster.current_budget_mbps * self._budget_scale
            )
            accounting["duration"] = duration
            accounting["waiting"] = waiting
            if self._split_policy is not None:
                self._split_policy.observe_durations(
                    round_index,
                    {
                        int(worker_id): float(worker_duration)
                        for worker_id, worker_duration in zip(
                            plan.selected, self._worker_durations(plan)
                        )
                    },
                )

        # INSTALL .. AGGREGATE run under the configured scheduler; tau local
        # iterations of split training (end-of-round aggregation is Eq. 17).
        try:
            losses = self.pipeline.run_split_round(
                self._round_ops(
                    plan, selected_workers, round_index, account, elastic_state
                ),
                config.local_iterations,
                self.policy.aggregate_every_iteration,
            )
        except ExecutorDeathError as error:
            if elastic_state is None:
                raise
            losses = self._recover_round(
                plan, selected_workers, round_index, account, elastic_state,
                error,
            )
        account()
        # Round over: fold the cohort's mutable state back into the pool
        # (a no-op for eager populations, the release point for lazy ones).
        self.pool.release(selected_workers)
        # Third-party schedulers registered via register_pipeline may not
        # subclass PipelineScheduler; treat the report as optional.
        report = getattr(self.pipeline, "last_report", None) or RoundReport()
        population_stats = self.pool.collect_round_stats()

        accuracy, test_loss = self.server.evaluate(
            self.data.test.data, self.data.test.targets, config.eval_batch_size
        )
        if elastic_state is not None:
            elastic_kwargs = {
                "dropped_ids": [int(w) for w in elastic_state.dropped],
                "completed_ids": [int(w) for w in elastic_state.completed],
                "rejoined_ids": [int(w) for w in elastic_state.rejoined],
                "dropout_rate": elastic_state.dropout_rate,
                "effective_cohort": elastic_state.effective_cohort,
            }
        else:
            elastic_kwargs = {"effective_cohort": len(plan.selected)}
        wire, logical, ratio = wire_round_delta(
            wire_before, self.executor.transport_stats()
        )
        if self._split_policy is not None:
            self._split_policy.observe_traffic(wire, logical)
        self.history.append(
            RoundRecord(
                round_index=round_index,
                sim_time=self._clock,
                duration=accounting["duration"],
                waiting_time=accounting["waiting"],
                traffic_mb=self.traffic.total_megabytes,
                train_loss=float(np.mean(losses)) if losses else 0.0,
                test_loss=test_loss,
                test_accuracy=accuracy,
                num_selected=len(plan.selected),
                total_batch=plan.total_batch,
                merged_kl=plan.merged_kl,
                effective_staleness=report.effective_staleness,
                selected_ids=[int(w) for w in plan.selected],
                cache_hits=int(population_stats.get("cache_hits", 0)),
                cache_misses=int(population_stats.get("cache_misses", 0)),
                bytes_on_wire=wire,
                logical_bytes=logical,
                compression_ratio=ratio,
                **elastic_kwargs,
            )
        )
        self._current_lr *= config.lr_decay
        logger.debug(
            "round %d: acc=%.3f loss=%.3f time=%.1fs traffic=%.1fMB",
            round_index, accuracy, np.mean(losses) if losses else 0.0,
            self._clock, self.traffic.total_megabytes,
        )

    def _compute_plan(self, round_index: int) -> RoundPlan:
        """Refresh estimates and run the control policy for one round.

        When the pool supplies a candidate subset, planning runs entirely
        in candidate-local coordinates (the policy sees dense arrays of
        ``len(candidates)`` rows) and the resulting plan is remapped to
        global worker ids afterwards.
        """
        self.cluster.advance_round(round_index)
        candidates = self.pool.plan_candidates(round_index)
        self._observe_states(candidates)
        context = self._make_context(round_index, candidates)
        plan = self.policy.plan_round(context)
        if candidates is not None:
            plan = plan.remapped(candidates)
        if self._elastic is not None:
            plan = self._elastic.over_select(
                plan, self.pool, candidates, self.config.base_batch_size
            )
        if self._split_policy is not None:
            # Depths are assigned last so over-selected stand-ins get one
            # too, and against the plan's final regulated batch sizes.
            plan = self._assign_depths(round_index, plan)
        return plan

    def _assign_depths(self, round_index: int, plan: RoundPlan) -> RoundPlan:
        """Run the split-point policy over the planned cohort."""
        context = SplitContext(
            depths=list(self._depth_candidates),
            flops=self._depth_flops,
            exchange_bytes=self._depth_exchange_bytes,
            model_bytes=self._depth_model_bytes,
            cluster=self.cluster,
            batch_sizes=plan.batch_sizes,
            base_batch_size=self.config.base_batch_size,
            local_iterations=self.config.local_iterations,
            aggregations=(
                self.config.local_iterations
                if self.policy.aggregate_every_iteration else 1
            ),
        )
        depths = self._split_policy.assign_depths(
            round_index, list(plan.selected), context
        )
        valid = set(self._depth_candidates)
        for worker_id in plan.selected:
            if depths.get(worker_id) not in valid:
                raise ConfigurationError(
                    f"split policy {self._split_policy.name!r} assigned "
                    f"depth {depths.get(worker_id)!r} to worker {worker_id}; "
                    f"candidates are {sorted(valid)}"
                )
        self.pool.record_depths(list(plan.selected), depths)
        if self._depth_aware:
            for worker_id in plan.selected:
                self._last_depths[int(worker_id)] = int(depths[worker_id])
        return plan.with_depths(depths)

    def _prefetch_plan(self, round_index: int) -> None:
        """Plan ``round_index`` early, inside the previous aggregate window.

        Called by relaxed schedulers after the previous round's accounting;
        the computed plan (and the cluster/estimator mutations planning
        entails) is exactly what :meth:`_stage_plan` would have produced at
        the start of the round, so trajectories are unchanged -- only the
        round-end drain disappears.
        """
        if self._pending_plan is None:
            self._pending_plan = (round_index, self._compute_plan(round_index))

    def _stage_plan(
        self, round_index: int
    ) -> tuple[RoundPlan, list[SplitWorker]]:
        """PLAN: take the prefetched plan or compute one, set the top LR."""
        if self._pending_plan is not None and self._pending_plan[0] == round_index:
            plan = self._pending_plan[1]
            self._pending_plan = None
        else:
            self._pending_plan = None
            plan = self._compute_plan(round_index)
        if not plan.selected:
            raise RuntimeError("control policy selected no workers")
        self.server.set_learning_rate(self._top_lr(plan))
        return plan, self.pool.checkout(plan.selected)

    def _recover_round(
        self,
        plan: RoundPlan,
        selected_workers: list[SplitWorker],
        round_index: int,
        account,
        elastic_state: ElasticRound,
        error: ExecutorDeathError,
    ) -> list[float]:
        """Re-run a round whose executor process died, with the survivors.

        The dead process takes its workers' in-flight state with it: the
        dirty pool is torn down (a fresh one spawns lazily on the next
        dispatch), the lost workers are recorded as dropped, and -- when
        enough of the planned cohort survives -- the round restarts from
        INSTALL with a survivor-only plan.  A second death in the re-run
        propagates.  With too few survivors the round yields no update but
        the session lives on.
        """
        lost = sorted(
            {int(worker_id) for worker_id in error.worker_ids}
            & {int(worker_id) for worker_id in plan.selected}
        )
        if not lost:
            # The death carried no attributable workers (e.g. it struck
            # before assignment); nothing to re-plan around.
            raise error
        logger.warning(
            "round %d: executor death lost workers %s; re-planning with "
            "the survivors", round_index, lost,
        )
        # Sibling processes of a dead child hold untrustworthy protocol
        # state; tear the pool down and let the next dispatch respawn it.
        self.executor.close()
        self._elastic.record_death(elastic_state, lost)
        lost_set = set(lost)
        survivors = [
            int(worker_id) for worker_id in plan.selected
            if int(worker_id) not in lost_set
        ]
        if len(survivors) < self._elastic.min_cohort(len(elastic_state.planned)):
            elastic_state.no_update = True
            elastic_state.completed = []
            return []
        survivor_plan = RoundPlan(
            selected=survivors,
            batch_sizes={
                worker_id: plan.batch_sizes[worker_id]
                for worker_id in survivors
            },
            merged_kl=plan.merged_kl,
            info=dict(plan.info, replanned_after_death=lost),
            depths=None if plan.depths is None else {
                worker_id: plan.depths[worker_id] for worker_id in survivors
            },
        )
        survivor_workers = [
            worker for worker in selected_workers
            if worker.worker_id not in lost_set
        ]
        return self.pipeline.run_split_round(
            self._round_ops(
                survivor_plan, survivor_workers, round_index, account,
                elastic_state,
            ),
            self.config.local_iterations,
            self.policy.aggregate_every_iteration,
        )

    def _round_ops(
        self,
        plan: RoundPlan,
        selected_workers: list[SplitWorker],
        round_index: int,
        account,
        elastic_state: "ElasticRound | None" = None,
    ) -> SplitRoundOps:
        """Bind this round's stage bodies for the pipeline scheduler."""
        worker_ids = [worker.worker_id for worker in selected_workers]

        def update_top(features, labels):
            # MERGE + TOP_UPDATE: one update over the merged sequence
            # (Eq. 16), or one per worker for the no-merging variants; the
            # dispatched gradient segments are re-aligned with the workers.
            # Heterogeneous cut depths route through the per-depth merge
            # groups and server-side bridges.
            if plan.depths is not None:
                loss, gradients = self.server.update_top_multidepth(
                    worker_ids, features, labels, plan.depths,
                    self.policy.merge_features,
                )
            elif self.policy.merge_features:
                loss, gradients = self.server.update_top_merged(
                    worker_ids, features, labels
                )
            else:
                loss, gradients = self.server.update_top_per_worker(
                    worker_ids, features, labels
                )
            return loss, [gradients[worker_id] for worker_id in worker_ids]

        return SplitRoundOps(
            executor=self.executor,
            workers=selected_workers,
            batch_sizes=[plan.batch_sizes[worker_id] for worker_id in worker_ids],
            install=lambda: self._install_bottoms(plan, selected_workers),
            update_top=update_top,
            aggregate=lambda: self._aggregate(
                plan, selected_workers, elastic_state
            ),
            install_nowait=lambda: self._install_bottoms(
                plan, selected_workers, nowait=True
            ),
            finish_aggregate=lambda states: self._aggregate_states(
                plan, selected_workers, states, elastic_state
            ),
            account=account,
            prefetch_plan=lambda: self._prefetch_plan(round_index + 1),
            depths=None if plan.depths is None else [
                plan.depths[worker_id] for worker_id in worker_ids
            ],
        )

    def _install_bottoms(
        self,
        plan: RoundPlan,
        selected_workers: list[SplitWorker],
        nowait: bool = False,
    ) -> None:
        """Distribute the global bottom model with batch-size-scaled rates."""
        learning_rates = [
            self._scaled_lr(plan.batch_sizes[worker.worker_id])
            for worker in selected_workers
        ]
        if plan.depths is not None:
            depths = [
                plan.depths[worker.worker_id] for worker in selected_workers
            ]
            # Bridges are carved from the same global bottom the workers
            # receive, before any of them can step.
            self.server.install_bridges(set(depths))
            install_multi = (
                self.executor.install_multi_nowait if nowait
                else self.executor.install_multi
            )
            install_multi(
                selected_workers, self.server.global_bottom, learning_rates,
                depths,
            )
            return
        install = self.executor.install_nowait if nowait else self.executor.install
        install(selected_workers, self.server.global_bottom, learning_rates)

    def _aggregate(
        self,
        plan: RoundPlan,
        selected_workers: list[SplitWorker],
        elastic_state: "ElasticRound | None" = None,
    ) -> None:
        """Aggregate bottom models with batch-size-proportional weights (Eq. 17)."""
        self._aggregate_states(
            plan,
            selected_workers,
            self.executor.bottom_states(selected_workers),
            elastic_state,
        )

    def _aggregate_states(
        self,
        plan: RoundPlan,
        selected_workers: list[SplitWorker],
        states: list[dict[str, np.ndarray]],
        elastic_state: "ElasticRound | None" = None,
    ) -> None:
        """The weight-averaging half of AGGREGATE, given collected states."""
        weights = [float(plan.batch_sizes[w.worker_id]) for w in selected_workers]
        if plan.depths is not None:
            # Complete every prefix state with its bridge's server-trained
            # tail so the states share the full bottom keyset; everything
            # downstream (delta capture, elastic folding, averaging) then
            # runs unchanged.
            states = self.server.complete_bottom_states(
                [worker.worker_id for worker in selected_workers],
                states,
                plan.depths,
            )
        if self.pool.wants_bottom_states:
            # Capture each worker's delta against the round's install-time
            # global bottom (still unchanged here) for the lazy pool's
            # DeltaCache.  Observation only: the next install overwrites
            # worker bottoms with the global model either way.  The full
            # cohort is observed even under churn -- a dropped worker's
            # local compute happened; only its upload missed the round.
            self.pool.observe_bottom_states(
                selected_workers, states, self.server.global_bottom.state_dict()
            )
        if elastic_state is not None:
            resolved = self._elastic.apply_aggregate(
                elastic_state,
                [worker.worker_id for worker in selected_workers],
                states,
                weights,
                self.server.global_bottom.state_dict(),
            )
            if resolved is None:
                # Below the cohort quorum: the round leaves the global
                # bottom model unchanged.
                return
            states, weights = resolved
        self.server.aggregate_bottoms(states, weights)

    def _scaled_lr(self, batch_size: int) -> float:
        """Worker learning rate proportional to its batch size (Section IV-B)."""
        scale = batch_size / self.config.base_batch_size
        scale = float(np.clip(scale, *WORKER_LR_SCALE_BOUNDS))
        return self._current_lr * scale

    def _top_lr(self, plan: RoundPlan) -> float:
        """Top-model learning rate for the round.

        When features are merged, the top model takes a single, stable update
        per iteration over the large merged (approximately IID) batch; the
        round learning rate is used as-is.  A mild linear-scaling boost can
        be enabled through ``extras['top_lr_scale']`` for larger fleets, but
        the default of 1.0 keeps the merged update well inside the stable
        step-size region of the scaled-down models.
        """
        if not self.policy.merge_features:
            return self._current_lr
        scale = float(self.config.extras.get("top_lr_scale", 1.0))
        scale = float(np.clip(scale, *TOP_LR_SCALE_BOUNDS))
        return self._current_lr * scale

    def _worker_durations(self, plan: RoundPlan) -> np.ndarray:
        """Planned round duration of each selected worker, in plan order.

        Reads the round's cluster state without mutating anything, so the
        same numbers come out whether it runs at the start of the round
        (the churn draw) or inside the accounting stage.
        """
        config = self.config
        aggregations = (
            config.local_iterations if self.policy.aggregate_every_iteration else 1
        )
        durations = []
        for worker_id in plan.selected:
            device = self.cluster[worker_id]
            flops, exchange, model_bytes = self._worker_costs(plan, worker_id)
            mu = device.compute_time_per_sample(flops)
            beta = device.comm_time_per_sample(exchange)
            batch = plan.batch_sizes[worker_id]
            compute_comm = config.local_iterations * batch * (mu + beta)
            model_moves = 2 * aggregations * device.model_transfer_time(
                model_bytes
            )
            durations.append(compute_comm + model_moves)
        return np.asarray(durations)

    def _worker_costs(
        self, plan: RoundPlan, worker_id: int
    ) -> tuple[float, int, int]:
        """``(forward flops, exchange bytes, model bytes)`` for one worker.

        Reads the per-depth tables when the plan carries policy-assigned
        depths; the uniform global-cut quantities otherwise.
        """
        if plan.depths is not None:
            depth = plan.depths[worker_id]
            return (
                self._depth_flops[depth],
                self._depth_exchange_bytes[depth],
                self._depth_model_bytes[depth],
            )
        return (
            self.bottom_flops,
            self.feature_exchange_bytes,
            self.bottom_model_bytes,
        )

    def _account_time_and_traffic(
        self, plan: RoundPlan, elastic_state: "ElasticRound | None" = None
    ) -> tuple[float, float]:
        """Charge simulated time and network traffic for the round."""
        config = self.config
        aggregations = (
            config.local_iterations if self.policy.aggregate_every_iteration else 1
        )
        durations = self._worker_durations(plan)
        for worker_id in plan.selected:
            batch = plan.batch_sizes[worker_id]
            __, exchange, model_bytes = self._worker_costs(plan, worker_id)
            # Traffic: features up + gradients down for every iteration, plus
            # bottom-model exchange once (or once per iteration for SplitFed).
            self.traffic.add_feature_exchange(
                config.local_iterations * batch * exchange
            )
            self.traffic.add_model_exchange(model_bytes * aggregations)
        deadline = (
            elastic_state.churn.deadline if elastic_state is not None else None
        )
        return (
            elastic_round_duration(durations, deadline),
            average_waiting_time(durations),
        )
