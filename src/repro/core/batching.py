"""Batch size regulation (Eq. 9) and bandwidth scaling (Eq. 10 / Alg. 1 line 7)."""

from __future__ import annotations

import numpy as np


def regulate_batch_sizes(
    per_sample_durations: np.ndarray,
    max_batch_size: int,
    min_batch_size: int = 1,
) -> np.ndarray:
    """Assign per-worker batch sizes proportional to worker speed (Eq. 9).

    The fastest worker ``l`` (smallest ``mu_l + beta_l``) receives the
    default maximum batch size ``D``; every other worker receives
    ``D * floor((mu_l + beta_l) / (mu_i + beta_i))`` so all workers finish an
    iteration in roughly the same time.  The paper's floor is applied to the
    whole product so slow workers still receive at least ``min_batch_size``.

    Args:
        per_sample_durations: Estimated ``mu_i + beta_i`` per worker (seconds).
        max_batch_size: ``D``, given to the fastest worker.
        min_batch_size: Lower clamp (paper implicitly uses >= 1).

    Returns:
        Integer batch sizes, one per worker.
    """
    durations = np.asarray(per_sample_durations, dtype=np.float64)
    if durations.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(durations <= 0):
        raise ValueError("per-sample durations must be positive")
    if max_batch_size < min_batch_size:
        raise ValueError("max_batch_size must be >= min_batch_size")
    fastest = durations.min()
    # The small epsilon absorbs floating-point error so the fastest worker's
    # ratio of exactly 1.0 is not floored down to D - 1.
    raw = np.floor(max_batch_size * fastest / durations + 1e-9)
    return np.clip(raw, min_batch_size, max_batch_size).astype(np.int64)


def scale_to_bandwidth(
    batch_sizes: np.ndarray,
    selected: np.ndarray | list[int],
    bandwidth_per_sample: "float | np.ndarray",
    bandwidth_budget: float,
    max_batch_size: int,
    min_batch_size: int = 1,
) -> np.ndarray:
    """Proportionally rescale selected workers' batches to fill the budget.

    Implements line 7 of Alg. 1: after fine-tuning, batch sizes are scaled
    up or down by a common factor so the occupied ingress bandwidth
    ``sum_i d_i * c_i`` approaches, but never exceeds, the budget ``B^h``.

    Args:
        batch_sizes: Current per-worker batch sizes (full-length vector).
        selected: Worker indices in ``S^h``.
        bandwidth_per_sample: ``c`` -- ingress bandwidth occupied per sample.
            A scalar charges every worker the same exchange size (the
            historical behaviour, bit-exact); a full-length vector charges
            worker ``i`` its own ``c_i`` (heterogeneous split depths).
        bandwidth_budget: ``B^h``.
        max_batch_size: Per-worker cap ``D``.
        min_batch_size: Per-worker floor.

    Returns:
        A copy of ``batch_sizes`` with the selected entries rescaled.
    """
    per_sample_costs = None
    if np.ndim(bandwidth_per_sample) > 0:
        per_sample_costs = np.asarray(bandwidth_per_sample, dtype=np.float64)
        if np.any(per_sample_costs <= 0):
            raise ValueError("bandwidth_per_sample must be positive")
    elif bandwidth_per_sample <= 0:
        raise ValueError("bandwidth_per_sample must be positive")
    if bandwidth_budget <= 0:
        raise ValueError("bandwidth_budget must be positive")
    result = np.asarray(batch_sizes, dtype=np.int64).copy()
    selected = np.asarray(list(selected), dtype=np.int64)
    if selected.size == 0:
        return result
    if per_sample_costs is None:
        current = float(result[selected].sum()) * bandwidth_per_sample
    else:
        selected_costs = per_sample_costs[selected]
        current = float((result[selected] * selected_costs).sum())
    if current <= 0:
        return result
    factor = bandwidth_budget / current
    scaled = np.floor(result[selected] * factor).astype(np.int64)
    scaled = np.clip(scaled, min_batch_size, max_batch_size)
    # Flooring may overshoot after clipping upward; trim greedily if needed.
    if per_sample_costs is None:
        while scaled.sum() * bandwidth_per_sample > bandwidth_budget and scaled.max() > min_batch_size:
            scaled[int(np.argmax(scaled))] -= 1
    else:
        # Trim the largest bandwidth consumer first: with heterogeneous
        # exchange sizes that is not necessarily the largest batch.
        while (float((scaled * selected_costs).sum()) > bandwidth_budget
               and scaled.max() > min_batch_size):
            order = np.argsort(-(scaled * selected_costs))
            for idx in order:
                if scaled[idx] > min_batch_size:
                    scaled[int(idx)] -= 1
                    break
    result[selected] = scaled
    return result


def occupied_bandwidth(
    batch_sizes: np.ndarray,
    selected: np.ndarray | list[int],
    bandwidth_per_sample: "float | np.ndarray",
) -> float:
    """Ingress bandwidth consumed by the selected workers (lhs of Eq. 10).

    ``bandwidth_per_sample`` may be a scalar (one exchange size for the
    whole fleet, the historical path -- bit-exact) or a full-length
    per-worker vector ``c_i`` (heterogeneous split depths give workers
    different feature-exchange sizes; see ``extras['depth_aware_selection']``).
    """
    selected = np.asarray(list(selected), dtype=np.int64)
    if selected.size == 0:
        return 0.0
    if np.ndim(bandwidth_per_sample) > 0:
        costs = (np.asarray(batch_sizes, dtype=np.float64)
                 * np.asarray(bandwidth_per_sample, dtype=np.float64))
        return float(costs[selected].sum())
    return float(np.asarray(batch_sizes)[selected].sum()) * bandwidth_per_sample
