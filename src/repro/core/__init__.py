"""MergeSFL core: feature merging, batch size regulation, worker arrangement.

The subpackage is organised around the paper's two modules:

* **Control module** (:mod:`repro.core.controller`): worker state
  estimation, batch-size regulation (Eq. 9), GA-based worker selection
  minimising the KL divergence to the IID label distribution (Eq. 10-13),
  Lagrangian batch fine-tuning (Eq. 14) and bandwidth scaling.
* **Training module** (:mod:`repro.core.engine`): bottom-model training on
  workers, feature merging, top-model update, gradient dispatching and
  weighted bottom-model aggregation (Eq. 15-17).

:class:`repro.core.mergesfl.MergeSFL` wires the two together.
"""

from repro.core.divergence import kl_divergence, mixed_label_distribution, iid_distribution
from repro.core.batching import regulate_batch_sizes, scale_to_bandwidth
from repro.core.selection import (
    IncrementalFitness,
    PopulationFitness,
    genetic_select,
    greedy_select,
    selection_priorities,
)
from repro.core.regulation import finetune_batch_sizes
from repro.core.merging import FeatureMerger, MergedBatch
from repro.core.worker import SplitWorker
from repro.core.server import SplitServer
from repro.core.controller import ControlModule, RoundPlan
from repro.core.engine import SplitTrainingEngine, ControlPolicy
from repro.core.mergesfl import MergeSFL, MergeSFLPolicy

__all__ = [
    "kl_divergence",
    "mixed_label_distribution",
    "iid_distribution",
    "regulate_batch_sizes",
    "scale_to_bandwidth",
    "selection_priorities",
    "genetic_select",
    "greedy_select",
    "PopulationFitness",
    "IncrementalFitness",
    "finetune_batch_sizes",
    "FeatureMerger",
    "MergedBatch",
    "SplitWorker",
    "SplitServer",
    "ControlModule",
    "RoundPlan",
    "SplitTrainingEngine",
    "ControlPolicy",
    "MergeSFL",
    "MergeSFLPolicy",
]
