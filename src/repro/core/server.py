"""Parameter-server side of split federated learning."""

from __future__ import annotations

import numpy as np

from repro.core.merging import FeatureMerger, MergedBatch
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.nn.optim import SGD
from repro.nn.serialization import (
    average_state_dicts,
    load_module_extra_state,
    module_extra_state,
)
from repro.nn.split import carve_bridge, shift_state_keys


class SplitServer:
    """Hosts the top model, merges features and aggregates bottom models.

    The server provides two update paths that mirror the paper's SFL-FM and
    SFL-T behaviours:

    * :meth:`update_top_merged` -- one forward/backward pass of the top
      model over the merged feature sequence (Eq. 16), returning per-worker
      gradient segments for dispatching.
    * :meth:`update_top_per_worker` -- sequential per-worker updates of the
      top model (typical SFL without feature merging).
    """

    def __init__(
        self,
        bottom_template: Sequential,
        top_model: Sequential,
        learning_rate: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 5.0,
    ) -> None:
        self.global_bottom = bottom_template.clone()
        self.top = top_model.clone()
        self.top.train()
        self.loss_fn = CrossEntropyLoss()
        self.top_optimizer = SGD(
            self.top.parameters(),
            lr=learning_rate,
            momentum=momentum,
            weight_decay=weight_decay,
            max_grad_norm=max_grad_norm,
        )
        self.merger = FeatureMerger()
        # Per-depth server-side bridges (heterogeneous split points); carved
        # from the current global bottom at every install, so the uniform
        # path never allocates any.
        self._bridges: dict[int, tuple[Sequential, SGD]] = {}

    # -- per-depth bridges (heterogeneous split points) ------------------------
    def install_bridges(self, depths: set[int]) -> None:
        """Carve a server-side bridge for every non-tail cut depth.

        A depth-``d`` bridge is ``global_bottom.layers[d:]``: it completes a
        shallow worker's forward pass up to the shared split layer and is
        trained server-side with the same SGD hyperparameters as the top
        model.  Bridges are re-carved from the *current* global bottom at
        every install (mirroring workers, which receive a fresh prefix), so
        aggregation folds their updates back before the next carve.
        """
        self._bridges = {}
        for depth in sorted(depths):
            if depth >= len(self.global_bottom):
                continue
            bridge = carve_bridge(self.global_bottom, depth)
            bridge.train()
            optimizer = SGD(
                bridge.parameters(),
                lr=self.top_optimizer.lr,
                momentum=self.top_optimizer.momentum,
                weight_decay=self.top_optimizer.weight_decay,
                max_grad_norm=self.top_optimizer.max_grad_norm,
            )
            self._bridges[depth] = (bridge, optimizer)

    def update_top_multidepth(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
        depths: dict[int, int],
        merge_features: bool,
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Top-model update for features arriving from heterogeneous depths.

        With merging, workers sharing a cut depth merge within their group,
        every non-tail group is completed through its bridge, and the
        completed groups concatenate into one mixed sequence for a single
        top-model update (the multi-depth generalization of Eq. 16).  The
        back-propagated gradient is sliced per group, pushed back through
        each bridge (which then takes its SGD step), and dispatched to
        workers rescaled to the mean over their own samples, exactly like
        the uniform path.
        """
        tail = len(self.global_bottom)
        if all(depths[worker_id] == tail for worker_id in worker_ids):
            # Degenerate single tail group: identical to the global cut.
            if merge_features:
                return self.update_top_merged(worker_ids, features, labels)
            return self.update_top_per_worker(worker_ids, features, labels)
        if not merge_features:
            return self._update_multidepth_per_worker(
                worker_ids, features, labels, depths
            )
        groups = self.merger.merge_by_depth(worker_ids, features, labels, depths)
        self.top_optimizer.zero_grad()
        completed = []
        for depth, merged in groups:
            if depth == tail:
                completed.append(merged.features)
            else:
                bridge, optimizer = self._bridges[depth]
                optimizer.zero_grad()
                completed.append(bridge.forward(merged.features))
        mixed = np.concatenate(completed, axis=0)
        mixed_labels = np.concatenate(
            [merged.labels for _, merged in groups], axis=0
        )
        logits = self.top.forward(mixed)
        loss = self.loss_fn.forward(logits, mixed_labels)
        mixed_gradient = self.top.backward(self.loss_fn.backward())
        self.top_optimizer.step()
        total = int(mixed.shape[0])
        gradients: dict[int, np.ndarray] = {}
        offset = 0
        for depth, merged in groups:
            size = merged.total_samples
            segment = mixed_gradient[offset:offset + size]
            offset += size
            if depth == tail:
                group_gradient = segment
            else:
                bridge, optimizer = self._bridges[depth]
                # Rescale to the mean over the group's own samples so the
                # bridge trains like a depth-d cohort, then undo the factor
                # for the dispatched worker segments below.
                group_gradient = bridge.backward(segment * (total / size))
                optimizer.step()
                group_gradient = group_gradient * (size / total)
            segments = self.merger.dispatch(merged, group_gradient)
            for worker_id, worker_segment in segments.items():
                gradients[worker_id] = worker_segment * (
                    total / worker_segment.shape[0]
                )
        return loss, gradients

    def _update_multidepth_per_worker(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
        depths: dict[int, int],
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Typical-SFL sequential updates with heterogeneous cut depths."""
        tail = len(self.global_bottom)
        gradients: dict[int, np.ndarray] = {}
        losses = []
        for worker_id, feats, labs in zip(worker_ids, features, labels):
            depth = depths[worker_id]
            bridge_pair = self._bridges.get(depth) if depth < tail else None
            self.top_optimizer.zero_grad()
            if bridge_pair is not None:
                bridge, optimizer = bridge_pair
                optimizer.zero_grad()
                feats = bridge.forward(feats)
            logits = self.top.forward(feats)
            losses.append(self.loss_fn.forward(logits, labs))
            gradient = self.top.backward(self.loss_fn.backward())
            if bridge_pair is not None:
                gradient = bridge.backward(gradient)
                optimizer.step()
            gradients[worker_id] = gradient
            self.top_optimizer.step()
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return mean_loss, gradients

    def complete_bottom_states(
        self,
        worker_ids: list[int],
        states: list[dict[str, np.ndarray]],
        depths: dict[int, int],
    ) -> list[dict[str, np.ndarray]]:
        """Extend per-depth prefix states to full bottom state dicts.

        A depth-``d`` worker returns parameters for layers ``0..d-1`` only;
        its bridge holds the server-trained layers ``d..`` (named from
        ``layer0``, hence the key shift).  Completing every state to the
        full keyset lets the existing weighted aggregation, delta caches
        and elastic folding run unchanged.
        """
        tail = len(self.global_bottom)
        completed = []
        for worker_id, state in zip(worker_ids, states):
            depth = depths[worker_id]
            if depth >= tail:
                completed.append(state)
                continue
            bridge, _ = self._bridges[depth]
            full = dict(state)
            full.update(shift_state_keys(bridge.state_dict(), depth))
            completed.append(full)
        return completed

    # -- top-model updates ---------------------------------------------------
    def update_top_merged(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Feature merging update (Eq. 16) followed by gradient dispatching.

        Returns:
            ``(loss, gradients)`` where ``gradients`` maps each worker id to
            the gradient segment of its features.
        """
        merged: MergedBatch = self.merger.merge(worker_ids, features, labels)
        self.top_optimizer.zero_grad()
        logits = self.top.forward(merged.features)
        loss = self.loss_fn.forward(logits, merged.labels)
        merged_gradient = self.top.backward(self.loss_fn.backward())
        self.top_optimizer.step()
        segments = self.merger.dispatch(merged, merged_gradient)
        # The merged loss is averaged over the whole mixed sequence, so each
        # segment carries a 1/M scale.  Re-normalise every worker's segment to
        # the mean gradient over its own d_i samples, so bottom models update
        # with the same magnitude as in typical SFL (Eq. 15).
        total = merged.total_samples
        rescaled = {
            worker_id: segment * (total / segment.shape[0])
            for worker_id, segment in segments.items()
        }
        return loss, rescaled

    def update_top_per_worker(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Typical-SFL update: the top model is updated once per worker, in turn."""
        gradients: dict[int, np.ndarray] = {}
        losses = []
        for worker_id, feats, labs in zip(worker_ids, features, labels):
            self.top_optimizer.zero_grad()
            logits = self.top.forward(feats)
            losses.append(self.loss_fn.forward(logits, labs))
            gradients[worker_id] = self.top.backward(self.loss_fn.backward())
            self.top_optimizer.step()
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return mean_loss, gradients

    # -- bottom-model aggregation ---------------------------------------------
    def aggregate_bottoms(
        self,
        states: list[dict[str, np.ndarray]],
        weights: list[float] | None = None,
    ) -> None:
        """Aggregate worker bottom models into the global bottom (Eq. 4 / Eq. 17)."""
        aggregated = average_state_dicts(states, weights)
        self.global_bottom.load_state_dict(aggregated)

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Model weights, optimizer state and layer RNGs for checkpointing."""
        return {
            "bottom": self.global_bottom.state_dict(),
            "top": self.top.state_dict(),
            "optimizer": self.top_optimizer.state_dict(),
            "bottom_extra": module_extra_state(self.global_bottom),
            "top_extra": module_extra_state(self.top),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.global_bottom.load_state_dict(state["bottom"])
        self.top.load_state_dict(state["top"])
        self.top_optimizer.load_state_dict(state["optimizer"])
        load_module_extra_state(self.global_bottom, state["bottom_extra"])
        load_module_extra_state(self.top, state["top_extra"])

    # -- evaluation -------------------------------------------------------------
    def evaluate(
        self, data: np.ndarray, targets: np.ndarray, batch_size: int = 256
    ) -> tuple[float, float]:
        """Accuracy and mean loss of the current global model on a test set."""
        self.global_bottom.eval()
        self.top.eval()
        correct = 0
        losses = []
        for start in range(0, data.shape[0], batch_size):
            stop = start + batch_size
            batch = data[start:stop]
            labels = targets[start:stop]
            logits = self.top.forward(self.global_bottom.forward(batch))
            losses.append(self.loss_fn.forward(logits, labels) * batch.shape[0])
            correct += int((logits.argmax(axis=1) == labels).sum())
        self.global_bottom.train()
        self.top.train()
        total = data.shape[0]
        if total == 0:
            return 0.0, 0.0
        return correct / total, float(np.sum(losses) / total)

    # -- learning-rate control -----------------------------------------------
    def set_learning_rate(self, learning_rate: float) -> None:
        """Set the top-model learning rate (per-round decay)."""
        self.top_optimizer.lr = learning_rate
