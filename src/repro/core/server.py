"""Parameter-server side of split federated learning."""

from __future__ import annotations

import numpy as np

from repro.core.merging import FeatureMerger, MergedBatch
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.nn.optim import SGD
from repro.nn.serialization import (
    average_state_dicts,
    load_module_extra_state,
    module_extra_state,
)


class SplitServer:
    """Hosts the top model, merges features and aggregates bottom models.

    The server provides two update paths that mirror the paper's SFL-FM and
    SFL-T behaviours:

    * :meth:`update_top_merged` -- one forward/backward pass of the top
      model over the merged feature sequence (Eq. 16), returning per-worker
      gradient segments for dispatching.
    * :meth:`update_top_per_worker` -- sequential per-worker updates of the
      top model (typical SFL without feature merging).
    """

    def __init__(
        self,
        bottom_template: Sequential,
        top_model: Sequential,
        learning_rate: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 5.0,
    ) -> None:
        self.global_bottom = bottom_template.clone()
        self.top = top_model.clone()
        self.top.train()
        self.loss_fn = CrossEntropyLoss()
        self.top_optimizer = SGD(
            self.top.parameters(),
            lr=learning_rate,
            momentum=momentum,
            weight_decay=weight_decay,
            max_grad_norm=max_grad_norm,
        )
        self.merger = FeatureMerger()

    # -- top-model updates ---------------------------------------------------
    def update_top_merged(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Feature merging update (Eq. 16) followed by gradient dispatching.

        Returns:
            ``(loss, gradients)`` where ``gradients`` maps each worker id to
            the gradient segment of its features.
        """
        merged: MergedBatch = self.merger.merge(worker_ids, features, labels)
        self.top_optimizer.zero_grad()
        logits = self.top.forward(merged.features)
        loss = self.loss_fn.forward(logits, merged.labels)
        merged_gradient = self.top.backward(self.loss_fn.backward())
        self.top_optimizer.step()
        segments = self.merger.dispatch(merged, merged_gradient)
        # The merged loss is averaged over the whole mixed sequence, so each
        # segment carries a 1/M scale.  Re-normalise every worker's segment to
        # the mean gradient over its own d_i samples, so bottom models update
        # with the same magnitude as in typical SFL (Eq. 15).
        total = merged.total_samples
        rescaled = {
            worker_id: segment * (total / segment.shape[0])
            for worker_id, segment in segments.items()
        }
        return loss, rescaled

    def update_top_per_worker(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Typical-SFL update: the top model is updated once per worker, in turn."""
        gradients: dict[int, np.ndarray] = {}
        losses = []
        for worker_id, feats, labs in zip(worker_ids, features, labels):
            self.top_optimizer.zero_grad()
            logits = self.top.forward(feats)
            losses.append(self.loss_fn.forward(logits, labs))
            gradients[worker_id] = self.top.backward(self.loss_fn.backward())
            self.top_optimizer.step()
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return mean_loss, gradients

    # -- bottom-model aggregation ---------------------------------------------
    def aggregate_bottoms(
        self,
        states: list[dict[str, np.ndarray]],
        weights: list[float] | None = None,
    ) -> None:
        """Aggregate worker bottom models into the global bottom (Eq. 4 / Eq. 17)."""
        aggregated = average_state_dicts(states, weights)
        self.global_bottom.load_state_dict(aggregated)

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Model weights, optimizer state and layer RNGs for checkpointing."""
        return {
            "bottom": self.global_bottom.state_dict(),
            "top": self.top.state_dict(),
            "optimizer": self.top_optimizer.state_dict(),
            "bottom_extra": module_extra_state(self.global_bottom),
            "top_extra": module_extra_state(self.top),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.global_bottom.load_state_dict(state["bottom"])
        self.top.load_state_dict(state["top"])
        self.top_optimizer.load_state_dict(state["optimizer"])
        load_module_extra_state(self.global_bottom, state["bottom_extra"])
        load_module_extra_state(self.top, state["top_extra"])

    # -- evaluation -------------------------------------------------------------
    def evaluate(
        self, data: np.ndarray, targets: np.ndarray, batch_size: int = 256
    ) -> tuple[float, float]:
        """Accuracy and mean loss of the current global model on a test set."""
        self.global_bottom.eval()
        self.top.eval()
        correct = 0
        losses = []
        for start in range(0, data.shape[0], batch_size):
            stop = start + batch_size
            batch = data[start:stop]
            labels = targets[start:stop]
            logits = self.top.forward(self.global_bottom.forward(batch))
            losses.append(self.loss_fn.forward(logits, labels) * batch.shape[0])
            correct += int((logits.argmax(axis=1) == labels).sum())
        self.global_bottom.train()
        self.top.train()
        total = data.shape[0]
        if total == 0:
            return 0.0, 0.0
        return correct / total, float(np.sum(losses) / total)

    # -- learning-rate control -----------------------------------------------
    def set_learning_rate(self, learning_rate: float) -> None:
        """Set the top-model learning rate (per-round decay)."""
        self.top_optimizer.lr = learning_rate
