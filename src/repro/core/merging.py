"""Feature merging and gradient dispatching (Section IV-B).

At each iteration the parameter server concatenates the features uploaded
by the selected workers into one mixed feature sequence, runs the top model
on it, and afterwards slices the back-propagated gradient into per-worker
segments that are dispatched back for bottom-model updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError


@dataclass
class MergedBatch:
    """A merged feature sequence plus the bookkeeping needed to un-merge it.

    Attributes:
        features: Concatenated features ``G^{h,k}`` (batch axis 0).
        labels: Concatenated labels aligned with ``features``.
        worker_ids: Worker ids in concatenation order.
        segment_sizes: Number of samples contributed by each worker, in the
            same order as ``worker_ids``.
    """

    features: np.ndarray
    labels: np.ndarray
    worker_ids: list[int]
    segment_sizes: list[int]

    @property
    def total_samples(self) -> int:
        """Total number of samples in the merged sequence."""
        return int(self.features.shape[0])


class FeatureMerger:
    """Merge per-worker features and split merged gradients back apart."""

    def merge(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> MergedBatch:
        """Concatenate worker features/labels into one mixed sequence.

        Args:
            worker_ids: Ids of the contributing workers.
            features: One feature tensor per worker (batch axis 0).
            labels: One label vector per worker.

        Raises:
            ShapeError: On empty input or mismatched feature/label lengths.
        """
        if not worker_ids:
            raise ShapeError("cannot merge an empty set of workers")
        if not (len(worker_ids) == len(features) == len(labels)):
            raise ShapeError("worker_ids, features and labels must align")
        trailing_shapes = {feat.shape[1:] for feat in features}
        if len(trailing_shapes) != 1:
            raise ShapeError(
                f"features have inconsistent shapes: {sorted(map(str, trailing_shapes))}"
            )
        segment_sizes = []
        for worker_id, feat, lab in zip(worker_ids, features, labels):
            if feat.shape[0] != lab.shape[0]:
                raise ShapeError(
                    f"worker {worker_id}: {feat.shape[0]} features vs "
                    f"{lab.shape[0]} labels"
                )
            segment_sizes.append(int(feat.shape[0]))
        return MergedBatch(
            features=np.concatenate(features, axis=0),
            labels=np.concatenate(labels, axis=0),
            worker_ids=list(worker_ids),
            segment_sizes=segment_sizes,
        )

    def dispatch(
        self, merged: MergedBatch, merged_gradient: np.ndarray
    ) -> dict[int, np.ndarray]:
        """Slice the merged gradient into per-worker segments.

        Args:
            merged: The batch returned by :meth:`merge`.
            merged_gradient: Gradient of the loss w.r.t. ``merged.features``.

        Returns:
            Mapping from worker id to its gradient segment, in the original
            per-worker order.
        """
        if merged_gradient.shape[0] != merged.total_samples:
            raise ShapeError(
                f"gradient batch {merged_gradient.shape[0]} does not match "
                f"merged batch {merged.total_samples}"
            )
        segments: dict[int, np.ndarray] = {}
        offset = 0
        for worker_id, size in zip(merged.worker_ids, merged.segment_sizes):
            segments[worker_id] = merged_gradient[offset:offset + size]
            offset += size
        return segments

    def merge_by_depth(
        self,
        worker_ids: list[int],
        features: list[np.ndarray],
        labels: list[np.ndarray],
        depths: dict[int, int],
    ) -> list[tuple[int, MergedBatch]]:
        """Merge features into per-depth groups (heterogeneous cut layers).

        Features uploaded from different cut depths have different shapes
        and cannot be concatenated directly; workers sharing a depth merge
        within their group exactly like :meth:`merge`.  Groups come back in
        ascending depth order; within a group, workers keep their original
        (plan) order, so the grouping is deterministic.

        Args:
            worker_ids: Ids of the contributing workers.
            features: One feature tensor per worker (batch axis 0).
            labels: One label vector per worker.
            depths: Cut depth per worker id; every worker must have one.

        Raises:
            ShapeError: On empty input, mismatched inputs, or a worker
                without an assigned depth.
        """
        if not (len(worker_ids) == len(features) == len(labels)):
            raise ShapeError("worker_ids, features and labels must align")
        grouped: dict[int, tuple[list, list, list]] = {}
        for worker_id, feat, lab in zip(worker_ids, features, labels):
            if worker_id not in depths:
                raise ShapeError(f"worker {worker_id} has no assigned cut depth")
            ids, feats, labs = grouped.setdefault(depths[worker_id], ([], [], []))
            ids.append(worker_id)
            feats.append(feat)
            labs.append(lab)
        return [
            (depth, self.merge(*grouped[depth]))
            for depth in sorted(grouped)
        ]
