"""Edge-computing testbed simulator.

Replaces the paper's physical platform (80 NVIDIA Jetson workers behind WiFi
routers plus a GPU parameter server) with a timing model: device profiles
taken from Table II, per-round performance modes, a WiFi bandwidth model
with distance groups and stochastic fluctuation, worker state estimation
(Eq. 5-6), and traffic accounting.  Training happens for real (on the NumPy
models); only wall-clock time and network bytes are simulated.
"""

from repro.simulation.device import (
    DeviceProfile,
    JETSON_TX2,
    JETSON_NX,
    JETSON_AGX,
    DEVICE_PROFILES,
    DEVICE_MIX,
)
from repro.simulation.network import WifiNetworkModel, DISTANCE_GROUPS
from repro.simulation.worker_device import WorkerDevice
from repro.simulation.cluster import Cluster, build_cluster
from repro.simulation.estimator import WorkerStateEstimator, BandwidthEstimator
from repro.simulation.traffic import TrafficMeter, feature_bytes
from repro.simulation.timing import (
    iteration_duration,
    round_duration,
    average_waiting_time,
)

__all__ = [
    "DeviceProfile",
    "JETSON_TX2",
    "JETSON_NX",
    "JETSON_AGX",
    "DEVICE_PROFILES",
    "DEVICE_MIX",
    "WifiNetworkModel",
    "DISTANCE_GROUPS",
    "WorkerDevice",
    "Cluster",
    "build_cluster",
    "WorkerStateEstimator",
    "BandwidthEstimator",
    "TrafficMeter",
    "feature_bytes",
    "iteration_duration",
    "round_duration",
    "average_waiting_time",
]
