"""Jetson device profiles (Table II of the paper).

Each profile models a device family with its sustainable training
throughput and the set of performance modes the testbed cycles through
("we randomly change the modes for devices every 20 communication
rounds").  The paper notes that the fastest AGX mode trains about 100x
faster than the slowest TX2 mode; the mode factors below reproduce that
spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a device family.

    Attributes:
        name: Family name (``jetson_tx2`` etc.).
        ai_performance: Marketing AI performance figure from Table II (for
            documentation only).
        gpu: GPU description from Table II.
        cpu: CPU description from Table II.
        memory_gb: On-board memory in GB.
        train_gflops: Effective sustainable training throughput in GFLOP/s
            at the highest performance mode (well below the peak figure, as
            in real mixed CPU/GPU training).
        mode_factors: Relative speed of each performance mode (mode 0 is
            the fastest).
    """

    name: str
    ai_performance: str
    gpu: str
    cpu: str
    memory_gb: int
    train_gflops: float
    mode_factors: tuple[float, ...]

    @property
    def num_modes(self) -> int:
        """Number of selectable performance modes."""
        return len(self.mode_factors)

    def throughput(self, mode: int) -> float:
        """Training throughput in FLOP/s for a given mode index."""
        if not 0 <= mode < self.num_modes:
            raise ValueError(
                f"{self.name} has modes 0..{self.num_modes - 1}, got {mode}"
            )
        return self.train_gflops * 1e9 * self.mode_factors[mode]


JETSON_TX2 = DeviceProfile(
    name="jetson_tx2",
    ai_performance="1.33 TFLOPS",
    gpu="256-core Pascal",
    cpu="Denver 2 and ARM A57 (4)",
    memory_gb=8,
    train_gflops=2.0,
    mode_factors=(1.0, 0.6, 0.3, 0.15),
)

JETSON_NX = DeviceProfile(
    name="jetson_nx",
    ai_performance="21 TOPS",
    gpu="384-core Volta",
    cpu="6-core Carmel ARM",
    memory_gb=8,
    train_gflops=10.0,
    mode_factors=(1.0, 0.8, 0.65, 0.5, 0.4, 0.3, 0.2, 0.12),
)

JETSON_AGX = DeviceProfile(
    name="jetson_agx",
    ai_performance="32 TOPS",
    gpu="512-core Volta",
    cpu="8-core Carmel ARM",
    memory_gb=32,
    train_gflops=30.0,
    mode_factors=(1.0, 0.85, 0.7, 0.55, 0.45, 0.35, 0.25, 0.15),
)

#: All profiles keyed by name.
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    profile.name: profile for profile in (JETSON_TX2, JETSON_NX, JETSON_AGX)
}

#: Testbed composition: 30 TX2, 40 NX, 10 AGX out of 80 devices (Section V-A),
#: expressed as sampling weights.
DEVICE_MIX: dict[str, float] = {
    "jetson_tx2": 30 / 80,
    "jetson_nx": 40 / 80,
    "jetson_agx": 10 / 80,
}


def sample_device_profile(rng: np.random.Generator) -> DeviceProfile:
    """Sample a device family according to the testbed composition."""
    names = list(DEVICE_MIX)
    weights = np.asarray([DEVICE_MIX[name] for name in names])
    choice = rng.choice(len(names), p=weights / weights.sum())
    return DEVICE_PROFILES[names[int(choice)]]


def heterogeneity_span() -> float:
    """Ratio between the fastest and slowest per-sample compute throughput.

    The paper reports roughly 100x between AGX mode 0 and TX2's lowest mode.
    """
    fastest = JETSON_AGX.throughput(0)
    slowest = JETSON_TX2.throughput(JETSON_TX2.num_modes - 1)
    return fastest / slowest
