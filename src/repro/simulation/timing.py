"""Round timing model (Eq. 7-8 of the paper).

Worker ``i`` running ``tau`` local iterations with batch size ``d_i`` takes
``t_i = tau * d_i * (mu_i + beta_i)`` seconds in a round; the round finishes
when the slowest selected worker finishes, and every faster worker idles for
the difference.
"""

from __future__ import annotations

import numpy as np


def iteration_duration(batch_size: int, mu: float, beta: float) -> float:
    """Duration of one local iteration for a single worker (seconds)."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if mu < 0 or beta < 0:
        raise ValueError("per-sample times must be non-negative")
    return batch_size * (mu + beta)


def worker_round_duration(
    tau: int, batch_size: int, mu: float, beta: float
) -> float:
    """Duration of a whole round for one worker: ``tau * d * (mu + beta)``."""
    if tau <= 0:
        raise ValueError("tau must be positive")
    return tau * iteration_duration(batch_size, mu, beta)


def round_duration(worker_durations: np.ndarray) -> float:
    """Completion time of a synchronous round (the slowest worker)."""
    durations = np.asarray(worker_durations, dtype=np.float64)
    if durations.size == 0:
        return 0.0
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    return float(durations.max())


def elastic_round_duration(
    worker_durations: np.ndarray, deadline: float | None = None
) -> float:
    """Completion time of an elastic round: first-k-of-n at the deadline.

    Without a deadline this is :func:`round_duration` (the server waits for
    the slowest selected worker); with one, the server stops waiting at the
    deadline and aggregates whatever arrived, so the round never runs
    longer than the deadline itself.
    """
    full = round_duration(worker_durations)
    if deadline is None:
        return full
    if deadline < 0:
        raise ValueError("deadline must be non-negative")
    return float(min(full, deadline))


def average_waiting_time(worker_durations: np.ndarray) -> float:
    """Average idle time across workers in a synchronous round (Eq. 8)."""
    durations = np.asarray(worker_durations, dtype=np.float64)
    if durations.size == 0:
        return 0.0
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    return float((durations.max() - durations).mean())
