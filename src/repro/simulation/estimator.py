"""Worker state estimation (Eq. 5-6) and PS bandwidth estimation.

The control module of MergeSFL does not see true device speeds; it keeps a
moving-average estimate of each worker's per-sample compute time ``mu`` and
transmission time ``beta`` refreshed from the latest observation, plus an
estimate of the PS ingress bandwidth based on the previous rounds.
"""

from __future__ import annotations

import numpy as np

from repro.utils.numeric import moving_average


class WorkerStateEstimator:
    """Moving-average estimator of per-worker compute/communication time."""

    def __init__(self, num_workers: int, alpha: float = 0.8) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.num_workers = num_workers
        self._mu = np.zeros(num_workers)
        self._beta = np.zeros(num_workers)
        self._seen = np.zeros(num_workers, dtype=bool)

    def update(self, worker_id: int, mu: float, beta: float) -> None:
        """Fold one observation into the estimates (Eq. 5 and Eq. 6)."""
        if mu < 0 or beta < 0:
            raise ValueError("observed times must be non-negative")
        if not self._seen[worker_id]:
            self._mu[worker_id] = mu
            self._beta[worker_id] = beta
            self._seen[worker_id] = True
            return
        self._mu[worker_id] = moving_average(self._mu[worker_id], mu, self.alpha)
        self._beta[worker_id] = moving_average(self._beta[worker_id], beta, self.alpha)

    def update_all(self, mus: np.ndarray, betas: np.ndarray) -> None:
        """Update every worker in one call."""
        for worker_id, (mu, beta) in enumerate(zip(mus, betas)):
            self.update(worker_id, float(mu), float(beta))

    def update_ids(self, ids: np.ndarray, mus: np.ndarray, betas: np.ndarray) -> None:
        """Fold observations for a subset of workers, vectorised.

        Elementwise first-observation/moving-average updates are IEEE-
        identical to the scalar :meth:`update` loop, so candidate-scope
        planning (which only ever observes the round's candidates) costs
        O(len(ids)) regardless of the registered population.
        """
        ids = np.asarray(ids, dtype=np.int64)
        mus = np.asarray(mus, dtype=np.float64)
        betas = np.asarray(betas, dtype=np.float64)
        if (mus < 0).any() or (betas < 0).any():
            raise ValueError("observed times must be non-negative")
        seen = self._seen[ids]
        fresh = ids[~seen]
        self._mu[fresh] = mus[~seen]
        self._beta[fresh] = betas[~seen]
        self._seen[fresh] = True
        tracked = ids[seen]
        self._mu[tracked] = moving_average(self._mu[tracked], mus[seen], self.alpha)
        self._beta[tracked] = moving_average(self._beta[tracked], betas[seen], self.alpha)

    def estimates(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(mu, beta)`` estimates (copies)."""
        return self._mu.copy(), self._beta.copy()

    def per_sample_duration(self) -> np.ndarray:
        """Estimated ``mu_i + beta_i`` per worker (seconds per sample)."""
        return self._mu + self._beta

    def per_sample_duration_for(self, ids: np.ndarray) -> np.ndarray:
        """``mu_i + beta_i`` for a subset of workers, in ``ids`` order.

        Bit-identical to ``per_sample_duration()[ids]`` without touching
        the full estimate arrays (candidate-scope planning).
        """
        ids = np.asarray(ids, dtype=np.int64)
        return self._mu[ids] + self._beta[ids]

    def is_initialised(self) -> bool:
        """Whether every worker has been observed at least once."""
        return bool(self._seen.all())

    def state_dict(self) -> dict:
        """Moving-average state for checkpointing."""
        return {
            "mu": self._mu.copy(),
            "beta": self._beta.copy(),
            "seen": self._seen.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        mu = np.asarray(state["mu"], dtype=np.float64)
        beta = np.asarray(state["beta"], dtype=np.float64)
        seen = np.asarray(state["seen"]).astype(bool)
        for name, array in (("mu", mu), ("beta", beta), ("seen", seen)):
            if array.shape != (self.num_workers,):
                raise ValueError(
                    f"checkpoint {name} has shape {array.shape}, estimator "
                    f"has {self.num_workers} workers"
                )
        self._mu = mu.copy()
        self._beta = beta.copy()
        self._seen = seen.copy()


class BandwidthEstimator:
    """Estimate the PS ingress bandwidth budget from past observations.

    Keeps a sliding history of the realised ingress bandwidth and predicts
    the next round's budget as a trimmed statistic (the paper: "analyze the
    statistical distribution of the ingress bandwidth based on the behaviour
    of the PS in the previous rounds").
    """

    def __init__(self, initial_mbps: float, history: int = 10, quantile: float = 0.4) -> None:
        if initial_mbps <= 0:
            raise ValueError("initial_mbps must be positive")
        if history <= 0:
            raise ValueError("history must be positive")
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self._history: list[float] = [initial_mbps]
        self._max_history = history
        self._quantile = quantile

    def observe(self, realised_mbps: float) -> None:
        """Record the ingress bandwidth realised in the round that just finished."""
        if realised_mbps <= 0:
            raise ValueError("realised bandwidth must be positive")
        self._history.append(realised_mbps)
        if len(self._history) > self._max_history:
            self._history.pop(0)

    def estimate(self) -> float:
        """Conservative estimate of the next round's ingress bandwidth (Mb/s)."""
        return float(np.quantile(np.asarray(self._history), self._quantile))

    def state_dict(self) -> dict:
        """Observation window for checkpointing."""
        return {"history": list(self._history)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        history = [float(value) for value in state["history"]]
        if not history:
            raise ValueError("bandwidth estimator history must be non-empty")
        self._history = history[-self._max_history:]
