"""Per-worker device state: compute mode and link bandwidth."""

from __future__ import annotations

import numpy as np

from repro.simulation.device import DeviceProfile
from repro.simulation.network import WifiNetworkModel
from repro.utils.rng import get_rng_state, set_rng_state

#: Backward pass costs roughly twice the forward pass, so training one
#: sample costs about three forward passes worth of FLOPs.
TRAIN_FLOPS_MULTIPLIER = 3.0


class WorkerDevice:
    """Simulated edge device hosting one federated worker.

    The device exposes the two per-sample quantities the paper's timing
    model needs: the computing time ``mu`` for processing one data sample
    and the transmission time ``beta`` for shipping one sample's feature
    (and receiving its gradient) over the WiFi link.
    """

    def __init__(
        self,
        worker_id: int,
        profile: DeviceProfile,
        network: WifiNetworkModel,
        rng: np.random.Generator,
        mode_change_interval: int = 20,
    ) -> None:
        if mode_change_interval <= 0:
            raise ValueError("mode_change_interval must be positive")
        self.worker_id = worker_id
        self.profile = profile
        self.network = network
        self.mode_change_interval = mode_change_interval
        self._rng = rng
        self.mode = int(rng.integers(0, profile.num_modes))
        self.bandwidth_mbps = network.sample_bandwidth_mbps(rng)
        self._last_mode_round = 0

    # -- round lifecycle ---------------------------------------------------
    def advance_round(self, round_index: int) -> None:
        """Refresh time-varying state at the start of a communication round.

        Bandwidth is re-drawn every round; the performance mode is re-drawn
        every ``mode_change_interval`` rounds, as in the paper's testbed.
        """
        self.bandwidth_mbps = self.network.sample_bandwidth_mbps(self._rng)
        if round_index - self._last_mode_round >= self.mode_change_interval:
            self.mode = int(self._rng.integers(0, self.profile.num_modes))
            self._last_mode_round = round_index

    def state_dict(self) -> dict:
        """Time-varying device state (mode, bandwidth, RNG) for checkpointing."""
        return {
            "rng": get_rng_state(self._rng),
            "mode": self.mode,
            "bandwidth_mbps": self.bandwidth_mbps,
            "last_mode_round": self._last_mode_round,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        set_rng_state(self._rng, state["rng"])
        self.mode = int(state["mode"])
        self.bandwidth_mbps = float(state["bandwidth_mbps"])
        self._last_mode_round = int(state["last_mode_round"])

    # -- per-sample costs ----------------------------------------------------
    def compute_time_per_sample(self, forward_flops: float) -> float:
        """Seconds to train on one sample (mu_i in the paper)."""
        if forward_flops <= 0:
            raise ValueError("forward_flops must be positive")
        train_flops = forward_flops * TRAIN_FLOPS_MULTIPLIER
        return train_flops / self.profile.throughput(self.mode)

    def comm_time_per_sample(self, bytes_per_sample: float) -> float:
        """Seconds to exchange one sample's feature + gradient (beta_i)."""
        if bytes_per_sample < 0:
            raise ValueError("bytes_per_sample must be non-negative")
        bits = bytes_per_sample * 8.0
        return bits / (self.bandwidth_mbps * 1e6)

    def model_transfer_time(self, model_bytes: float) -> float:
        """Seconds to upload or download a (sub)model of the given size."""
        if model_bytes < 0:
            raise ValueError("model_bytes must be non-negative")
        return model_bytes * 8.0 / (self.bandwidth_mbps * 1e6)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerDevice(id={self.worker_id}, profile={self.profile.name}, "
            f"mode={self.mode}, bw={self.bandwidth_mbps:.1f}Mbps)"
        )
