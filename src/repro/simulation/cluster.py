"""Heterogeneous cluster construction."""

from __future__ import annotations

import numpy as np

from repro.simulation.device import sample_device_profile
from repro.simulation.network import WifiNetworkModel, assign_distance
from repro.simulation.worker_device import WorkerDevice
from repro.utils.rng import get_rng_state, set_rng_state, spawn_rngs


class Cluster:
    """A collection of simulated worker devices plus the PS ingress link."""

    def __init__(
        self,
        devices: list[WorkerDevice],
        bandwidth_budget_mbps: float,
        rng: np.random.Generator,
        budget_jitter: float = 0.15,
    ) -> None:
        if bandwidth_budget_mbps <= 0:
            raise ValueError("bandwidth_budget_mbps must be positive")
        self.devices = devices
        self.nominal_budget_mbps = bandwidth_budget_mbps
        self.budget_jitter = budget_jitter
        self._rng = rng
        self.current_budget_mbps = bandwidth_budget_mbps

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, worker_id: int) -> WorkerDevice:
        return self.devices[worker_id]

    def advance_round(self, round_index: int) -> None:
        """Refresh every device and re-draw the PS ingress bandwidth budget."""
        for device in self.devices:
            device.advance_round(round_index)
        noise = self._rng.normal(1.0, self.budget_jitter)
        self.current_budget_mbps = float(
            np.clip(self.nominal_budget_mbps * noise,
                    0.3 * self.nominal_budget_mbps,
                    2.0 * self.nominal_budget_mbps)
        )

    def state_dict(self) -> dict:
        """Time-varying cluster state (budget, RNGs, devices) for checkpointing."""
        return {
            "rng": get_rng_state(self._rng),
            "current_budget_mbps": self.current_budget_mbps,
            "devices": [device.state_dict() for device in self.devices],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        devices_state = state["devices"]
        if len(devices_state) != len(self.devices):
            raise ValueError(
                f"checkpoint has {len(devices_state)} devices, cluster has "
                f"{len(self.devices)}"
            )
        set_rng_state(self._rng, state["rng"])
        self.current_budget_mbps = float(state["current_budget_mbps"])
        for device, device_state in zip(self.devices, devices_state):
            device.load_state_dict(device_state)

    def compute_times(self, forward_flops: float) -> np.ndarray:
        """Per-sample compute time mu_i for every worker (seconds)."""
        return np.asarray(
            [d.compute_time_per_sample(forward_flops) for d in self.devices]
        )

    def comm_times(self, bytes_per_sample: float) -> np.ndarray:
        """Per-sample communication time beta_i for every worker (seconds)."""
        return np.asarray(
            [d.comm_time_per_sample(bytes_per_sample) for d in self.devices]
        )


def build_cluster(
    num_workers: int,
    bandwidth_budget_mbps: float,
    seed: int = 0,
    mode_change_interval: int = 20,
) -> Cluster:
    """Construct a heterogeneous cluster mirroring the paper's testbed.

    Device families follow the 30/40/10 TX2/NX/AGX mix and workers are
    spread evenly over the four WiFi distance groups.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    rngs = spawn_rngs(seed, num_workers + 2)
    devices = []
    for worker_id in range(num_workers):
        profile = sample_device_profile(rngs[worker_id])
        network = WifiNetworkModel(distance_m=assign_distance(worker_id))
        devices.append(
            WorkerDevice(
                worker_id=worker_id,
                profile=profile,
                network=network,
                rng=rngs[worker_id],
                mode_change_interval=mode_change_interval,
            )
        )
    return Cluster(
        devices=devices,
        bandwidth_budget_mbps=bandwidth_budget_mbps,
        rng=rngs[num_workers],
    )
