"""Heterogeneous cluster construction.

:class:`Cluster` holds one live :class:`WorkerDevice` per registered worker
(the eager path).  :class:`LazyCluster` answers the same queries for
populations too large to hold live device objects: devices are derived on
first touch from ``spawned_rng(seed, worker_id)`` -- the identical stream
``build_cluster`` hands each eager device -- and caught up by replaying the
missed ``advance_round`` calls, so a lazily-materialised device is
bit-identical to an always-live one for any touch pattern.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.device import sample_device_profile
from repro.simulation.network import WifiNetworkModel, assign_distance
from repro.simulation.worker_device import WorkerDevice
from repro.utils.rng import get_rng_state, set_rng_state, spawn_rngs, spawned_rng


class Cluster:
    """A collection of simulated worker devices plus the PS ingress link."""

    def __init__(
        self,
        devices: list[WorkerDevice],
        bandwidth_budget_mbps: float,
        rng: np.random.Generator,
        budget_jitter: float = 0.15,
    ) -> None:
        if bandwidth_budget_mbps <= 0:
            raise ValueError("bandwidth_budget_mbps must be positive")
        self.devices = devices
        self.nominal_budget_mbps = bandwidth_budget_mbps
        self.budget_jitter = budget_jitter
        self._rng = rng
        self.current_budget_mbps = bandwidth_budget_mbps

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, worker_id: int) -> WorkerDevice:
        return self.devices[worker_id]

    def advance_round(self, round_index: int) -> None:
        """Refresh every device and re-draw the PS ingress bandwidth budget."""
        for device in self.devices:
            device.advance_round(round_index)
        noise = self._rng.normal(1.0, self.budget_jitter)
        self.current_budget_mbps = float(
            np.clip(self.nominal_budget_mbps * noise,
                    0.3 * self.nominal_budget_mbps,
                    2.0 * self.nominal_budget_mbps)
        )

    def state_dict(self) -> dict:
        """Time-varying cluster state (budget, RNGs, devices) for checkpointing."""
        return {
            "rng": get_rng_state(self._rng),
            "current_budget_mbps": self.current_budget_mbps,
            "devices": [device.state_dict() for device in self.devices],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        devices_state = state["devices"]
        if len(devices_state) != len(self.devices):
            raise ValueError(
                f"checkpoint has {len(devices_state)} devices, cluster has "
                f"{len(self.devices)}"
            )
        set_rng_state(self._rng, state["rng"])
        self.current_budget_mbps = float(state["current_budget_mbps"])
        for device, device_state in zip(self.devices, devices_state):
            device.load_state_dict(device_state)

    def compute_times(self, forward_flops: float) -> np.ndarray:
        """Per-sample compute time mu_i for every worker (seconds)."""
        return np.asarray(
            [d.compute_time_per_sample(forward_flops) for d in self.devices]
        )

    def comm_times(self, bytes_per_sample: float) -> np.ndarray:
        """Per-sample communication time beta_i for every worker (seconds)."""
        return np.asarray(
            [d.comm_time_per_sample(bytes_per_sample) for d in self.devices]
        )

    def compute_times_for(self, ids: np.ndarray, forward_flops: float) -> np.ndarray:
        """``mu_i`` for a subset of workers (candidate-scope planning)."""
        return np.asarray(
            [self[int(i)].compute_time_per_sample(forward_flops) for i in ids]
        )

    def comm_times_for(self, ids: np.ndarray, bytes_per_sample: float) -> np.ndarray:
        """``beta_i`` for a subset of workers (candidate-scope planning)."""
        return np.asarray(
            [self[int(i)].comm_time_per_sample(bytes_per_sample) for i in ids]
        )


class LazyCluster:
    """A cluster whose devices are derived on demand from their RNG streams.

    Device state is a pure function of ``(seed, worker_id, round)``: the
    per-device generator draws its profile, mode and bandwidth at
    construction and advances only through its own ``advance_round`` calls,
    with no cross-device input.  The lazy cluster therefore keeps no
    per-device state at all -- a touched device is built from
    ``spawned_rng(seed, worker_id)`` (the stream ``build_cluster`` would
    have given it) and replayed through the missed rounds, which makes it
    bit-identical to an eager device.  Checkpoints carry only the budget
    RNG, the current budget and the round counter, independent of the
    registered population.

    ``max_live_devices`` caps the device cache; eviction is lossless (a
    re-touched device replays from scratch) and only trades memory for
    replay time.
    """

    def __init__(
        self,
        num_workers: int,
        bandwidth_budget_mbps: float,
        seed: int = 0,
        mode_change_interval: int = 20,
        budget_jitter: float = 0.15,
        max_live_devices: int = 0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if bandwidth_budget_mbps <= 0:
            raise ValueError("bandwidth_budget_mbps must be positive")
        self.num_workers = num_workers
        self.nominal_budget_mbps = bandwidth_budget_mbps
        self.budget_jitter = budget_jitter
        self.current_budget_mbps = bandwidth_budget_mbps
        self.max_live_devices = max_live_devices
        self._seed = seed
        self._mode_change_interval = mode_change_interval
        # The same stream build_cluster uses for the cluster budget
        # (rngs[num_workers] of spawn_rngs(seed, num_workers + 2)).
        self._rng = spawned_rng(seed, num_workers)
        self._round = -1
        self._devices: dict[int, WorkerDevice] = {}
        self._advanced: dict[int, int] = {}

    def __len__(self) -> int:
        return self.num_workers

    def __getitem__(self, worker_id: int) -> WorkerDevice:
        worker_id = int(worker_id)
        if not 0 <= worker_id < self.num_workers:
            raise IndexError(
                f"worker id {worker_id} outside cluster of {self.num_workers}"
            )
        device = self._devices.get(worker_id)
        if device is None:
            rng = spawned_rng(self._seed, worker_id)
            profile = sample_device_profile(rng)
            network = WifiNetworkModel(distance_m=assign_distance(worker_id))
            device = WorkerDevice(
                worker_id=worker_id,
                profile=profile,
                network=network,
                rng=rng,
                mode_change_interval=self._mode_change_interval,
            )
            self._trim_cache()
            self._devices[worker_id] = device
            self._advanced[worker_id] = -1
        # Catch up through the rounds this device missed while dormant.
        for round_index in range(self._advanced[worker_id] + 1, self._round + 1):
            device.advance_round(round_index)
        self._advanced[worker_id] = self._round
        return device

    def _trim_cache(self) -> None:
        if self.max_live_devices <= 0:
            return
        while len(self._devices) >= self.max_live_devices:
            oldest = next(iter(self._devices))
            del self._devices[oldest]
            del self._advanced[oldest]

    @property
    def live_devices(self) -> int:
        """Devices currently held in the cache."""
        return len(self._devices)

    @property
    def devices(self) -> list[WorkerDevice]:
        """All devices, materialised (small populations / diagnostics only)."""
        return [self[worker_id] for worker_id in range(self.num_workers)]

    def advance_round(self, round_index: int) -> None:
        """Re-draw the PS budget; devices catch up lazily on next touch."""
        self._round = round_index
        noise = self._rng.normal(1.0, self.budget_jitter)
        self.current_budget_mbps = float(
            np.clip(self.nominal_budget_mbps * noise,
                    0.3 * self.nominal_budget_mbps,
                    2.0 * self.nominal_budget_mbps)
        )

    def compute_times(self, forward_flops: float) -> np.ndarray:
        """Per-sample compute time mu_i for every worker (seconds)."""
        return self.compute_times_for(range(self.num_workers), forward_flops)

    def comm_times(self, bytes_per_sample: float) -> np.ndarray:
        """Per-sample communication time beta_i for every worker (seconds)."""
        return self.comm_times_for(range(self.num_workers), bytes_per_sample)

    def compute_times_for(self, ids, forward_flops: float) -> np.ndarray:
        """``mu_i`` for a subset of workers (candidate-scope planning)."""
        return np.asarray(
            [self[int(i)].compute_time_per_sample(forward_flops) for i in ids]
        )

    def comm_times_for(self, ids, bytes_per_sample: float) -> np.ndarray:
        """``beta_i`` for a subset of workers (candidate-scope planning)."""
        return np.asarray(
            [self[int(i)].comm_time_per_sample(bytes_per_sample) for i in ids]
        )

    def state_dict(self) -> dict:
        """Population-independent state: budget RNG, budget and round only.

        Device state is recomputed by replay, so it never enters the
        checkpoint -- a million registered devices serialise to three
        scalars and one RNG state.
        """
        return {
            "format": "lazy",
            "rng": get_rng_state(self._rng),
            "current_budget_mbps": self.current_budget_mbps,
            "round": self._round,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state.get("format") != "lazy":
            raise ValueError(
                "checkpoint holds an eager cluster but the engine runs with "
                "population='lazy'"
            )
        set_rng_state(self._rng, state["rng"])
        self.current_budget_mbps = float(state["current_budget_mbps"])
        self._round = int(state["round"])
        self._devices.clear()
        self._advanced.clear()


def build_cluster(
    num_workers: int,
    bandwidth_budget_mbps: float,
    seed: int = 0,
    mode_change_interval: int = 20,
) -> Cluster:
    """Construct a heterogeneous cluster mirroring the paper's testbed.

    Device families follow the 30/40/10 TX2/NX/AGX mix and workers are
    spread evenly over the four WiFi distance groups.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    rngs = spawn_rngs(seed, num_workers + 2)
    devices = []
    for worker_id in range(num_workers):
        profile = sample_device_profile(rngs[worker_id])
        network = WifiNetworkModel(distance_m=assign_distance(worker_id))
        devices.append(
            WorkerDevice(
                worker_id=worker_id,
                profile=profile,
                network=network,
                rng=rngs[worker_id],
                mode_change_interval=mode_change_interval,
            )
        )
    return Cluster(
        devices=devices,
        bandwidth_budget_mbps=bandwidth_budget_mbps,
        rng=rngs[num_workers],
    )
