"""Per-round worker churn: dropouts, stragglers and rejoin delays.

MergeSFL's round model assumes every selected worker returns its local
update; at edge scale, dropouts and stragglers are the norm.  The
:class:`ChurnModel` makes churn a first-class simulation input: given a
round's selected cohort and their planned durations (from
:mod:`repro.simulation.timing`), it decides deterministically

* which workers *drop* (crash or go offline before replying),
* which workers *straggle* past the round's aggregation deadline (a
  multiple of the cohort's median planned duration), and
* after how many rounds each missing worker's late update *rejoins* the
  server (bounded by ``rejoin_staleness_bound``).

Every decision is drawn from ``spawned_rng(seed + CHURN_SEED_OFFSET,
round_index)``, so churn is reproducible per round, independent of the
executor, and does not perturb any other RNG stream (the trajectory with
``dropout_rate=0`` and no deadline is bit-exact with churn disabled).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import spawned_rng

#: Seed offset of the per-round churn streams, separating them from the
#: engine round streams (9173 / 40617), worker streams (1000+), candidate
#: sampling (77003) and sampled shards (614657).
CHURN_SEED_OFFSET = 52361


@dataclass
class RoundChurn:
    """One round's churn outcome.

    Attributes:
        deadline: Absolute aggregation deadline in simulated seconds, or
            ``None`` when the server waits for the slowest worker.
        dropped: Worker ids that never reply this round.
        stragglers: Worker ids whose planned duration exceeds the deadline
            (they finish, but too late for the round's aggregate).
        rejoin_delays: Mapping from missing worker id to the number of
            rounds after which its late update reaches the server; ids
            absent from the mapping never rejoin.
    """

    deadline: float | None = None
    dropped: list[int] = field(default_factory=list)
    stragglers: list[int] = field(default_factory=list)
    rejoin_delays: dict[int, int] = field(default_factory=dict)

    @property
    def missing(self) -> list[int]:
        """Every worker whose reply misses the round (dropped + stragglers)."""
        return list(self.dropped) + list(self.stragglers)


class ChurnModel:
    """Deterministic per-round dropout/straggler/rejoin decisions.

    ``dropout_rate`` is either a scalar (every worker drops with the same
    probability), a mapping from worker id to rate, or a callable
    ``worker_id -> rate`` (e.g. derived from device classes: a battery-bound
    Jetson TX2 drops more often than a mains-powered AGX).  All three forms
    draw one uniform per cohort member from the same stream and compare it
    to that worker's rate, so the scalar path is bit-exact with the
    historical behaviour.
    """

    def __init__(
        self,
        dropout_rate=0.0,
        straggler_deadline: float = 0.0,
        rejoin_staleness_bound: int = 0,
        seed: int = 0,
    ) -> None:
        if callable(dropout_rate) or isinstance(dropout_rate, Mapping):
            self.dropout_rate = dropout_rate
        else:
            dropout_rate = float(dropout_rate)
            if not 0.0 <= dropout_rate <= 1.0:
                raise ValueError(
                    f"dropout_rate must be in [0, 1], got {dropout_rate}"
                )
            self.dropout_rate = dropout_rate
        if straggler_deadline < 0:
            raise ValueError(
                f"straggler_deadline must be non-negative, "
                f"got {straggler_deadline}"
            )
        if rejoin_staleness_bound < 0:
            raise ValueError(
                f"rejoin_staleness_bound must be non-negative, "
                f"got {rejoin_staleness_bound}"
            )
        self.straggler_deadline = float(straggler_deadline)
        self.rejoin_staleness_bound = int(rejoin_staleness_bound)
        self._seed = seed + CHURN_SEED_OFFSET

    def rate_of(self, worker_id: int) -> float:
        """The dropout rate of one worker under any rate form."""
        rate = self.dropout_rate
        if callable(rate):
            rate = rate(worker_id)
        elif isinstance(rate, Mapping):
            rate = rate.get(worker_id, 0.0)
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"dropout rate of worker {worker_id} must be in [0, 1], "
                f"got {rate}"
            )
        return rate

    def round_churn(
        self,
        round_index: int,
        worker_ids,
        durations: np.ndarray,
    ) -> RoundChurn:
        """Draw the round's churn for a cohort and its planned durations.

        ``durations`` is aligned with ``worker_ids`` (one planned round
        duration per selected worker).  The deadline is
        ``straggler_deadline`` times the cohort's *median* planned duration
        -- relative to the cohort, so the same multiplier is meaningful
        across batch-size plans; ``straggler_deadline == 0`` disables the
        deadline (wait-for-all).  Dropped workers draw a rejoin delay
        uniformly in ``[1, rejoin_staleness_bound]``; a straggler's reply
        arrives just after the deadline, i.e. with delay 1.
        """
        rng = spawned_rng(self._seed, round_index)
        ids = [int(worker_id) for worker_id in worker_ids]
        draws = rng.random(len(ids))
        dropped = [wid for wid, u in zip(ids, draws) if u < self.rate_of(wid)]
        deadline: float | None = None
        stragglers: list[int] = []
        if self.straggler_deadline > 0 and ids:
            planned = np.asarray(durations, dtype=np.float64)
            deadline = float(self.straggler_deadline * np.median(planned))
            dropped_set = set(dropped)
            stragglers = [
                wid for wid, duration in zip(ids, planned)
                if duration > deadline and wid not in dropped_set
            ]
        rejoin_delays: dict[int, int] = {}
        if self.rejoin_staleness_bound > 0:
            for wid in dropped:
                rejoin_delays[wid] = int(
                    rng.integers(1, self.rejoin_staleness_bound + 1)
                )
            for wid in stragglers:
                rejoin_delays[wid] = 1
        return RoundChurn(
            deadline=deadline,
            dropped=dropped,
            stragglers=stragglers,
            rejoin_delays=rejoin_delays,
        )
