"""Network traffic accounting.

The paper's third metric sums the bytes moved between workers and the PS:
bottom/full models during distribution and aggregation, and features plus
gradients during split training.  Features and models travel as float32.
"""

from __future__ import annotations

import numpy as np

#: Bytes per scalar on the wire (float32 serialisation).
BYTES_PER_ELEMENT = 4


def feature_bytes(feature_shape: tuple[int, ...], batch_size: int = 1) -> int:
    """Bytes of a feature (or gradient) tensor for ``batch_size`` samples."""
    if batch_size < 0:
        raise ValueError("batch_size must be non-negative")
    per_sample = int(np.prod(feature_shape)) * BYTES_PER_ELEMENT
    return per_sample * batch_size


class TrafficMeter:
    """Accumulates uplink/downlink traffic in bytes, by category."""

    CATEGORIES = ("model", "feature", "gradient", "control")

    def __init__(self) -> None:
        self._bytes: dict[str, float] = {category: 0.0 for category in self.CATEGORIES}

    def add(self, category: str, num_bytes: float) -> None:
        """Record ``num_bytes`` of traffic in the given category."""
        if category not in self._bytes:
            raise ValueError(
                f"unknown traffic category {category!r}; known: {self.CATEGORIES}"
            )
        if num_bytes < 0:
            raise ValueError("traffic must be non-negative")
        self._bytes[category] += float(num_bytes)

    def add_model_exchange(self, model_bytes: float, num_workers: int = 1) -> None:
        """Record a model being both downloaded and uploaded by ``num_workers``."""
        self.add("model", 2.0 * model_bytes * num_workers)

    def add_feature_exchange(self, feature_and_grad_bytes: float) -> None:
        """Record a feature upload plus its gradient download."""
        self.add("feature", feature_and_grad_bytes / 2.0)
        self.add("gradient", feature_and_grad_bytes / 2.0)

    @property
    def total_bytes(self) -> float:
        """Total traffic across all categories."""
        return float(sum(self._bytes.values()))

    @property
    def total_megabytes(self) -> float:
        """Total traffic in MB (decimal, as in the paper's figures)."""
        return self.total_bytes / 1e6

    def breakdown(self) -> dict[str, float]:
        """Per-category byte counts (copy)."""
        return dict(self._bytes)

    def state_dict(self) -> dict:
        """Accumulated per-category traffic for checkpointing."""
        return {"bytes": dict(self._bytes)}

    def load_state_dict(self, state: dict) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        counters = state["bytes"]
        unknown = set(counters) - set(self.CATEGORIES)
        if unknown:
            raise ValueError(f"unknown traffic categories in checkpoint: {sorted(unknown)}")
        self._bytes = {category: 0.0 for category in self.CATEGORIES}
        for category, value in counters.items():
            self._bytes[category] = float(value)
