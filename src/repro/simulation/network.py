"""WiFi bandwidth model.

The testbed groups devices at 2 m, 8 m, 14 m and 20 m from the WiFi routers
and measures per-device bandwidth fluctuating between 1 Mb/s and 30 Mb/s
(iperf3).  The model assigns each worker a distance group with a
corresponding mean bandwidth and re-draws a noisy value every round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Distance (metres) -> mean bandwidth in Mb/s.
DISTANCE_GROUPS: dict[float, float] = {
    2.0: 24.0,
    8.0: 15.0,
    14.0: 8.0,
    20.0: 4.0,
}

#: Hard bounds reported by the paper's iperf3 measurements.
MIN_BANDWIDTH_MBPS = 1.0
MAX_BANDWIDTH_MBPS = 30.0


@dataclass
class WifiNetworkModel:
    """Per-worker stochastic bandwidth generator.

    Attributes:
        distance_m: Distance of the worker from the router.
        jitter: Log-normal sigma of the round-to-round fluctuation.
    """

    distance_m: float
    jitter: float = 0.35

    def __post_init__(self) -> None:
        if self.distance_m not in DISTANCE_GROUPS:
            # Interpolate for unlisted distances so tests can probe the model.
            distances = np.asarray(sorted(DISTANCE_GROUPS))
            means = np.asarray([DISTANCE_GROUPS[d] for d in distances])
            self._mean = float(np.interp(self.distance_m, distances, means))
        else:
            self._mean = DISTANCE_GROUPS[self.distance_m]

    @property
    def mean_bandwidth_mbps(self) -> float:
        """Long-run mean bandwidth for this distance."""
        return self._mean

    def sample_bandwidth_mbps(self, rng: np.random.Generator) -> float:
        """Draw this round's bandwidth in Mb/s, clipped to the measured range."""
        noisy = self._mean * rng.lognormal(mean=0.0, sigma=self.jitter)
        return float(np.clip(noisy, MIN_BANDWIDTH_MBPS, MAX_BANDWIDTH_MBPS))


def assign_distance(worker_id: int) -> float:
    """Assign workers to the four distance groups round-robin (20 per group)."""
    distances = sorted(DISTANCE_GROUPS)
    return distances[worker_id % len(distances)]
