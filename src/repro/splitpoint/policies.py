"""Split-point policies: per-worker cut-depth selection.

Every policy sees the same :class:`SplitContext` -- the candidate depths of
the bottom model together with per-depth cost tables (forward FLOPs,
feature-exchange bytes, prefix model bytes) and the simulated cluster --
and returns one depth per selected worker.  The engine threads the chosen
depths through installation, merging, aggregation and accounting.

Policies:

* ``uniform`` -- every worker cuts at the full bottom depth, i.e. today's
  global constant.  Marked *trivial*: the engine short-circuits and builds
  no multi-depth machinery, keeping the default path bit-exact.
* ``profile`` -- a static per-worker depth from the device-class
  compute-vs-bandwidth profiles (Table II Jetson classes + WiFi distance
  groups).  Stateless and time-invariant: slow-compute/fast-link devices
  get shallow cuts, fast devices keep deep cuts.
* ``adaptive`` -- re-selects depths every round from the device's current
  state, an EMA straggler factor learned from recorded per-round durations
  and a wire-cost scale learned from ``bytes_on_wire``, co-optimizing with
  the regulated per-worker batch sizes of the round plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.api.registry import SPLIT_POLICIES, register_split_policy
from repro.simulation.worker_device import TRAIN_FLOPS_MULTIPLIER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ExperimentConfig


@dataclass
class SplitContext:
    """Everything a policy may consult when assigning depths.

    Attributes:
        depths: Candidate cut depths inside the bottom model, ascending;
            the last entry is the full bottom (the global cut).
        flops: Forward FLOPs of the depth-``d`` prefix, per sample.
        exchange_bytes: Feature-up + gradient-down bytes per sample at
            depth ``d``.
        model_bytes: Size of the depth-``d`` prefix model in bytes.
        cluster: The device cluster; ``cluster[worker_id]`` is the
            worker's :class:`~repro.simulation.worker_device.WorkerDevice`.
        batch_sizes: The round plan's regulated per-worker batch sizes.
        base_batch_size: Fleet-wide nominal batch size (fallback when a
            worker has no regulated entry yet).
        local_iterations: Local iterations per round (tau).
        aggregations: Model up/down transfers per round (1, or tau when
            aggregating every iteration).
    """

    depths: list[int]
    flops: dict[int, float]
    exchange_bytes: dict[int, int]
    model_bytes: dict[int, int]
    cluster: object
    batch_sizes: dict[int, int] = field(default_factory=dict)
    base_batch_size: int = 1
    local_iterations: int = 1
    aggregations: int = 1


class SplitPolicy:
    """Interface for per-worker cut-depth selection."""

    #: Registry name (also used in logs and checkpoints).
    name: str = "abstract"

    #: Trivial policies always pick the full bottom depth; the engine skips
    #: every piece of multi-depth machinery for them, so the default path
    #: stays bit-exact with the pre-policy code.
    trivial: bool = False

    def assign_depths(
        self, round_index: int, worker_ids: list[int], ctx: SplitContext
    ) -> dict[int, int]:
        """Pick a candidate depth for every worker in ``worker_ids``."""
        raise NotImplementedError

    def observe_durations(
        self, round_index: int, durations: dict[int, float]
    ) -> None:
        """Record the round's simulated per-worker durations (seconds)."""

    def observe_traffic(self, bytes_on_wire: int, logical_bytes: int) -> None:
        """Record the round's wire traffic against its logical payload."""

    def state_dict(self) -> dict:
        """JSON-serializable policy state; ``{}`` for stateless policies."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _round_cost(
    depth_cost: float, move_cost: float, batch: int, ctx: SplitContext
) -> float:
    """One worker's round duration estimate for a per-sample cost."""
    return (
        ctx.local_iterations * batch * depth_cost
        + 2.0 * ctx.aggregations * move_cost
    )


@register_split_policy("uniform")
class UniformSplitPolicy(SplitPolicy):
    """Every worker cuts at the full bottom depth (the global constant)."""

    name = "uniform"
    trivial = True

    def __init__(self, config: "ExperimentConfig | None" = None) -> None:
        self.config = config

    def assign_depths(self, round_index, worker_ids, ctx):
        return {worker_id: ctx.depths[-1] for worker_id in worker_ids}


@register_split_policy("profile")
class ProfileSplitPolicy(SplitPolicy):
    """Static per-worker depth from the device-class nominal profiles.

    Scores every candidate depth with the worker's *long-run* cost model --
    class training throughput at the expected performance mode and the WiFi
    distance group's mean bandwidth -- and keeps the argmin for the whole
    run.  Stateless: the same worker always maps to the same depth, so
    checkpoints carry nothing.
    """

    name = "profile"

    def __init__(self, config: "ExperimentConfig | None" = None) -> None:
        self.config = config

    def assign_depths(self, round_index, worker_ids, ctx):
        return {
            worker_id: self._select(ctx.cluster[worker_id], ctx)
            for worker_id in worker_ids
        }

    def _select(self, device, ctx: SplitContext) -> int:
        profile = device.profile
        throughput = (
            profile.train_gflops * 1e9 * float(np.mean(profile.mode_factors))
        )
        mean_mbps = device.network.mean_bandwidth_mbps
        best_depth, best_cost = ctx.depths[-1], float("inf")
        for depth in ctx.depths:
            mu = ctx.flops[depth] * TRAIN_FLOPS_MULTIPLIER / throughput
            beta = ctx.exchange_bytes[depth] * 8.0 / (mean_mbps * 1e6)
            move = ctx.model_bytes[depth] * 8.0 / (mean_mbps * 1e6)
            cost = _round_cost(mu + beta, move, ctx.base_batch_size, ctx)
            # Ties go to the deeper cut (closer to the global constant).
            if cost <= best_cost:
                best_depth, best_cost = depth, cost
        return best_depth


@register_split_policy("adaptive")
class AdaptiveSplitPolicy(SplitPolicy):
    """Re-selects depths each round from recorded durations and wire bytes.

    Keeps two learned signals: a per-worker *slowdown* EMA (the worker's
    recorded round duration relative to the cohort mean -- persistent
    stragglers get shallower cuts than their nominal profile suggests) and
    a *wire scale* EMA (``bytes_on_wire`` relative to the logical payload,
    so a compressing codec cheapens communication-heavy shallow cuts).
    Costs use the round plan's regulated batch sizes, co-optimizing the
    depth choice with the batch-size regulation that produced the plan.
    """

    name = "adaptive"

    #: EMA smoothing for both learned signals.
    decay: float = 0.5

    def __init__(self, config: "ExperimentConfig | None" = None) -> None:
        self.config = config
        self._slowdown: dict[int, float] = {}
        self._wire_scale: float = 1.0

    def assign_depths(self, round_index, worker_ids, ctx):
        return {
            worker_id: self._select(worker_id, ctx.cluster[worker_id], ctx)
            for worker_id in worker_ids
        }

    def _select(self, worker_id: int, device, ctx: SplitContext) -> int:
        batch = ctx.batch_sizes.get(worker_id, ctx.base_batch_size)
        slowdown = self._slowdown.get(worker_id, 1.0)
        best_depth, best_cost = ctx.depths[-1], float("inf")
        for depth in ctx.depths:
            # The slowdown EMA scales only the compute term: a persistent
            # straggler behaves like a lower-throughput device than its
            # nominal profile, which shifts the compute/communication
            # trade-off toward a shallower cut.  (Scaling the whole cost
            # would be a per-worker constant and could never change the
            # argmin.)  Communication terms track the wire-scale EMA.
            mu = slowdown * device.compute_time_per_sample(ctx.flops[depth])
            beta = self._wire_scale * device.comm_time_per_sample(
                ctx.exchange_bytes[depth]
            )
            move = device.model_transfer_time(ctx.model_bytes[depth])
            cost = _round_cost(mu + beta, move, batch, ctx)
            if cost <= best_cost:
                best_depth, best_cost = depth, cost
        return best_depth

    def observe_durations(self, round_index, durations):
        if not durations:
            return
        mean = float(np.mean(list(durations.values())))
        if mean <= 0:
            return
        for worker_id, duration in durations.items():
            relative = float(duration) / mean
            previous = self._slowdown.get(worker_id, 1.0)
            self._slowdown[worker_id] = (
                (1.0 - self.decay) * previous + self.decay * relative
            )

    def observe_traffic(self, bytes_on_wire, logical_bytes):
        if logical_bytes <= 0:
            return
        ratio = float(bytes_on_wire) / float(logical_bytes)
        self._wire_scale = (1.0 - self.decay) * self._wire_scale + self.decay * ratio

    def state_dict(self):
        return {
            "slowdown": {str(k): v for k, v in self._slowdown.items()},
            "wire_scale": self._wire_scale,
        }

    def load_state_dict(self, state):
        self._slowdown = {int(k): float(v) for k, v in state["slowdown"].items()}
        self._wire_scale = float(state["wire_scale"])


def build_split_policy(config: "ExperimentConfig") -> SplitPolicy | None:
    """Resolve ``config.split_policy``; ``None`` when the policy is trivial.

    ``None`` tells the engine to take the pre-policy global-cut path with
    no multi-depth machinery at all, which is what keeps
    ``split_policy="uniform"`` bit-exact by construction.
    """
    policy = SPLIT_POLICIES.get(config.split_policy)(config)
    return None if policy.trivial else policy
