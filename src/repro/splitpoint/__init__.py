"""Heterogeneity-aware per-worker split points (HASFL-style).

MergeSFL fixes one global cut layer; this package makes the cut depth a
per-worker decision.  A *split policy* (registered in
:data:`repro.api.registry.SPLIT_POLICIES`) assigns every selected worker a
prefix depth inside the bottom model each round; the engine carves matching
worker prefixes and server-side bridges (:mod:`repro.nn.split`), the
feature merger forms per-depth merge groups (:mod:`repro.core.merging`) and
the server completes each group through its bridge before the shared top
model (:mod:`repro.core.server`).

The ``uniform`` policy reproduces today's global constant bit-exactly: it
is *trivial*, so :func:`build_split_policy` returns ``None`` and the engine
builds none of the multi-depth machinery.
"""

from repro.splitpoint.policies import (
    AdaptiveSplitPolicy,
    ProfileSplitPolicy,
    SplitContext,
    SplitPolicy,
    UniformSplitPolicy,
    build_split_policy,
)

__all__ = [
    "AdaptiveSplitPolicy",
    "ProfileSplitPolicy",
    "SplitContext",
    "SplitPolicy",
    "UniformSplitPolicy",
    "build_split_policy",
]
