"""Reproduction of MergeSFL (ICDE 2024).

MergeSFL: Split Federated Learning with Feature Merging and Batch Size
Regulation.  This package provides:

* ``repro.nn`` -- a from-scratch NumPy neural-network library (layers,
  losses, optimizers, model zoo, model splitting) used in place of PyTorch.
* ``repro.data`` -- synthetic stand-ins for the paper's datasets plus
  Dirichlet/IID partitioning utilities.
* ``repro.simulation`` -- an edge-computing testbed simulator (Jetson device
  profiles, WiFi bandwidth model, simulated clock, traffic accounting).
* ``repro.core`` -- the MergeSFL system itself: feature merging, batch size
  regulation, GA-based worker selection, control and training modules.
* ``repro.baselines`` -- FedAvg, SplitFed, LocFedMix-SL, AdaSFL, PyramidFL
  and the motivation/ablation variants.
* ``repro.experiments`` -- experiment runner and per-figure reproduction
  entry points.
"""

from repro.version import __version__
from repro.config import ExperimentConfig
from repro.experiments.runner import run_experiment

__all__ = [
    "__version__",
    "ExperimentConfig",
    "run_experiment",
]
