"""Reproduction of MergeSFL (ICDE 2024).

MergeSFL: Split Federated Learning with Feature Merging and Batch Size
Regulation.  This package provides:

* ``repro.nn`` -- a from-scratch NumPy neural-network library (layers,
  losses, optimizers, model zoo, model splitting) used in place of PyTorch.
* ``repro.data`` -- synthetic stand-ins for the paper's datasets plus
  Dirichlet/IID partitioning utilities.
* ``repro.simulation`` -- an edge-computing testbed simulator (Jetson device
  profiles, WiFi bandwidth model, simulated clock, traffic accounting).
* ``repro.core`` -- the MergeSFL system itself: feature merging, batch size
  regulation, GA-based worker selection, control and training modules.
* ``repro.baselines`` -- FedAvg, SplitFed, LocFedMix-SL, AdaSFL, PyramidFL
  and the motivation/ablation variants.
* ``repro.api`` -- the extension and execution API: plugin registries
  (``@register_algorithm`` / ``@register_dataset`` / ``@register_model`` /
  ``@register_policy`` / ``@register_executor`` / ``@register_codec``),
  the unified
  :class:`~repro.api.algorithm.Algorithm` interface, and the steppable,
  checkpointable :class:`~repro.api.session.Session`.
* ``repro.parallel`` -- interchangeable, bit-exact execution backends for
  the per-worker compute: serial, vectorized (worker-stacked kernels) and
  multiprocess.
* ``repro.study`` -- declarative multi-trial sweeps: :class:`Study` grids,
  a parallel resumable :class:`StudyRunner`, JSONL result stores and
  shipped callbacks (early stopping, periodic checkpoints, logging).
* ``repro.experiments`` -- per-figure reproduction entry points and the
  classic :func:`~repro.experiments.runner.run_experiment` wrapper.

Quickstart::

    from repro import ExperimentConfig, Session

    session = Session.from_config(ExperimentConfig(num_rounds=5))
    history = session.run()

Extending::

    from repro import register_algorithm

    @register_algorithm("my_sfl")
    def build_my_sfl(components):
        ...
"""

from repro.version import __version__
from repro.config import ExperimentConfig
from repro.api.algorithm import Algorithm
from repro.api.registry import (
    ALGORITHMS,
    CODECS,
    DATASETS,
    EXECUTORS,
    MODELS,
    PIPELINES,
    POLICIES,
    SELECTION_SOLVERS,
    SPLIT_POLICIES,
    TRANSPORTS,
    register_algorithm,
    register_codec,
    register_dataset,
    register_executor,
    register_model,
    register_pipeline,
    register_policy,
    register_selection_solver,
    register_split_policy,
    register_transport,
)
from repro.api.session import Session
from repro.experiments.runner import run_experiment
from repro.study import Study, StudyRunner, StudyStore

__all__ = [
    "__version__",
    "ExperimentConfig",
    "run_experiment",
    "Algorithm",
    "Session",
    "Study",
    "StudyRunner",
    "StudyStore",
    "ALGORITHMS",
    "CODECS",
    "DATASETS",
    "EXECUTORS",
    "MODELS",
    "PIPELINES",
    "POLICIES",
    "SELECTION_SOLVERS",
    "SPLIT_POLICIES",
    "TRANSPORTS",
    "register_algorithm",
    "register_codec",
    "register_dataset",
    "register_executor",
    "register_model",
    "register_pipeline",
    "register_policy",
    "register_selection_solver",
    "register_split_policy",
    "register_transport",
]
