"""Worker pools: the engines' view of a registered population.

A :class:`WorkerPool` answers the two questions a training engine asks:

* *planning*: metadata columns (label distributions, participation counts)
  and, optionally, a per-round candidate subset to plan over -- no live
  workers are needed to plan a round;
* *execution*: ``checkout`` live workers for the round's selected cohort
  and ``release`` them when the round ends.

:class:`EagerWorkerPool` wraps the existing eagerly-built worker list
(checkout/release are no-ops and checkpoints keep today's list format).
:class:`LazyWorkerPool` materialises workers on demand from a
:class:`~repro.population.registry.WorkerRegistry`, so peak resident worker
state is bounded by the selected cohort rather than the registered
population.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable

import numpy as np

from repro.core.worker import SplitWorker
from repro.population.cache import DeltaCache
from repro.population.materializer import Materializer
from repro.population.registry import WorkerRegistry, sample_distinct
from repro.utils.rng import spawned_rng

#: Seed offset of the per-round candidate-sampling streams, separating them
#: from the engine round streams (9173 / 40617) and worker streams (1000+).
CANDIDATE_SEED_OFFSET = 77003


class WorkerPool(abc.ABC):
    """Engine-facing interface over a registered worker population."""

    #: Whether the split engine should hand aggregated bottom states to
    #: :meth:`observe_bottom_states` (delta-cache capture).
    wants_bottom_states: bool = False

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of registered workers."""

    # -- planning columns ----------------------------------------------------
    @abc.abstractmethod
    def label_distributions(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Label-distribution rows for ``ids`` (all workers if ``None``)."""

    @abc.abstractmethod
    def participation_counts(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Participation counts ``K_i`` for ``ids`` (all workers if ``None``)."""

    def plan_candidates(self, round_index: int) -> np.ndarray | None:
        """Sorted candidate ids to plan the round over, or ``None`` for all."""
        return None

    # -- cohort lifecycle ----------------------------------------------------
    @abc.abstractmethod
    def checkout(self, ids: Iterable[int]) -> list[SplitWorker]:
        """Live workers for the round's selected cohort, in ``ids`` order."""

    def release(self, workers: list[SplitWorker]) -> None:
        """Return a cohort at round end (persist mutable state)."""

    def bind_bottom_source(
        self, source: Callable[[], "object"]
    ) -> None:
        """Give the pool access to the current global bottom model."""

    def observe_bottom_states(
        self,
        workers: list[SplitWorker],
        states: list[dict[str, np.ndarray]],
        reference: dict[str, np.ndarray],
    ) -> None:
        """Record the cohort's aggregated bottom states (delta capture)."""

    def collect_round_stats(self) -> dict:
        """Per-round population counters (cache hits/misses); resets them."""
        return {"cache_hits": 0, "cache_misses": 0}

    def record_depths(self, ids: Iterable[int], depths: dict[int, int]) -> None:
        """Note the cohort's policy-assigned cut depths (metadata only).

        Eager pools keep no metadata columns, so the default is a no-op;
        the lazy pool persists depths as a registry column so population
        snapshots can answer "which depth does worker i run at".
        """

    # -- introspection + checkpointing ---------------------------------------
    def live_worker_count(self) -> int:
        """Workers currently materialised in memory."""
        return len(self)

    def stats(self) -> dict:
        """Free-form population statistics (for benchmarks and tests)."""
        return {"registered": len(self), "live": self.live_worker_count()}

    @property
    def eager_workers(self) -> list[SplitWorker]:
        """The persistent worker list, where one exists."""
        raise RuntimeError(
            "this worker pool has no persistent worker list; use checkout()"
        )

    @abc.abstractmethod
    def workers_state(self):
        """Checkpoint payload for the population's mutable state."""

    @abc.abstractmethod
    def load_workers_state(self, state) -> None:
        """Restore a payload produced by :meth:`workers_state`."""


def as_worker_pool(workers) -> WorkerPool:
    """Adapt a plain worker list (or pass through a pool) for an engine."""
    if isinstance(workers, WorkerPool):
        return workers
    return EagerWorkerPool(list(workers))


class EagerWorkerPool(WorkerPool):
    """Wraps the eagerly-constructed worker list the engines always used."""

    def __init__(self, workers: list[SplitWorker]) -> None:
        self._workers = workers
        self._label_matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._workers)

    def label_distributions(self, ids: np.ndarray | None = None) -> np.ndarray:
        if self._label_matrix is None:
            self._label_matrix = np.stack(
                [worker.local_label_distribution() for worker in self._workers]
            )
        if ids is None:
            return self._label_matrix
        return self._label_matrix[np.asarray(ids, dtype=np.int64)]

    def participation_counts(self, ids: np.ndarray | None = None) -> np.ndarray:
        counts = np.asarray(
            [worker.participation_count for worker in self._workers],
            dtype=np.float64,
        )
        if ids is None:
            return counts
        return counts[np.asarray(ids, dtype=np.int64)]

    def checkout(self, ids: Iterable[int]) -> list[SplitWorker]:
        return [self._workers[int(worker_id)] for worker_id in ids]

    @property
    def eager_workers(self) -> list[SplitWorker]:
        return self._workers

    def workers_state(self) -> list[dict]:
        return [worker.state_dict() for worker in self._workers]

    def load_workers_state(self, state) -> None:
        if not isinstance(state, list):
            raise ValueError(
                "checkpoint holds a lazy population registry but the engine "
                "runs with population='eager'"
            )
        if len(state) != len(self._workers):
            raise ValueError(
                f"checkpoint has {len(state)} workers, engine has "
                f"{len(self._workers)}"
            )
        for worker, worker_state in zip(self._workers, state):
            worker.load_state_dict(worker_state)


class LazyWorkerPool(WorkerPool):
    """Materialises the round's cohort on demand from a registry.

    Live state is bounded by the checked-out cohort: ``checkout`` rebuilds
    workers through the :class:`Materializer` (restoring sampling state and
    participation from their registry rows, and -- when a delta cache is
    attached and a global bottom model is bound -- reconstructing the bottom
    weights as ``global + delta``, falling back to the plain global on a
    cache miss), and ``release`` folds the mutable state back into the rows
    and drops the live objects.

    When ``candidates_per_round`` is positive, planning happens over a
    deterministic per-round candidate subset drawn from
    ``spawned_rng(seed + CANDIDATE_SEED_OFFSET, round_index)``, keeping
    per-round planning cost flat in the registered population.
    """

    def __init__(
        self,
        registry: WorkerRegistry,
        materializer: Materializer,
        cache: DeltaCache | None = None,
        candidates_per_round: int = 0,
        seed: int = 0,
    ) -> None:
        if candidates_per_round < 0:
            raise ValueError("candidates_per_round must be non-negative")
        self.registry = registry
        self.materializer = materializer
        self.cache = cache
        self.candidates_per_round = candidates_per_round
        self._candidate_seed = seed + CANDIDATE_SEED_OFFSET
        self._live: dict[int, SplitWorker] = {}
        self._bottom_source: Callable[[], "object"] | None = None
        self.peak_live_workers = 0

    def __len__(self) -> int:
        return len(self.registry)

    # -- planning columns ----------------------------------------------------
    def label_distributions(self, ids: np.ndarray | None = None) -> np.ndarray:
        return self.registry.label_distributions(ids)

    def participation_counts(self, ids: np.ndarray | None = None) -> np.ndarray:
        counts = self.registry.participation_counts(ids)
        if self._live:
            # A relaxed scheduler may plan the next round inside the current
            # aggregate window, before the cohort is released; live workers
            # override their (stale) registry rows.
            if ids is None:
                for worker_id, worker in self._live.items():
                    counts[worker_id] = worker.participation_count
            else:
                positions = {
                    int(worker_id): index for index, worker_id in enumerate(ids)
                }
                for worker_id, worker in self._live.items():
                    index = positions.get(worker_id)
                    if index is not None:
                        counts[index] = worker.participation_count
        return counts

    def plan_candidates(self, round_index: int) -> np.ndarray | None:
        count = self.candidates_per_round
        if count <= 0 or count >= len(self.registry):
            return None
        rng = spawned_rng(self._candidate_seed, round_index)
        return sample_distinct(rng, len(self.registry), count)

    # -- cohort lifecycle ----------------------------------------------------
    def checkout(self, ids: Iterable[int]) -> list[SplitWorker]:
        workers = []
        for worker_id in ids:
            worker_id = int(worker_id)
            worker = self._live.get(worker_id)
            if worker is None:
                worker = self.materializer.materialize(worker_id)
                self._reconstruct_bottom(worker)
                self._live[worker_id] = worker
            workers.append(worker)
        self.peak_live_workers = max(self.peak_live_workers, len(self._live))
        return workers

    def _reconstruct_bottom(self, worker: SplitWorker) -> None:
        if self.cache is None or self._bottom_source is None:
            return
        bottom = self._bottom_source()
        state = self.cache.reconstruct(worker.worker_id, bottom.state_dict())
        # A miss leaves worker.bottom unset: the engine's install stage
        # pushes a fresh clone of the global model, i.e. FedAvg semantics.
        if state is not None:
            rebuilt = bottom.clone()
            rebuilt.load_state_dict(state)
            worker.bottom = rebuilt

    def release(self, workers: list[SplitWorker]) -> None:
        for worker in workers:
            self.materializer.release(worker)
            self._live.pop(worker.worker_id, None)

    def bind_bottom_source(self, source: Callable[[], "object"]) -> None:
        self._bottom_source = source

    @property
    def wants_bottom_states(self) -> bool:  # type: ignore[override]
        return self.cache is not None and self._bottom_source is not None

    def observe_bottom_states(
        self,
        workers: list[SplitWorker],
        states: list[dict[str, np.ndarray]],
        reference: dict[str, np.ndarray],
    ) -> None:
        if self.cache is None:
            return
        for worker, state in zip(workers, states):
            self.cache.put(worker.worker_id, state, reference)

    def collect_round_stats(self) -> dict:
        if self.cache is None:
            return {"cache_hits": 0, "cache_misses": 0}
        hits, misses = self.cache.take_round_counts()
        return {"cache_hits": hits, "cache_misses": misses}

    def record_depths(self, ids: Iterable[int], depths: dict[int, int]) -> None:
        self.registry.record_depths(ids, depths)

    # -- introspection + checkpointing ---------------------------------------
    def live_worker_count(self) -> int:
        return len(self._live)

    def stats(self) -> dict:
        return {
            "registered": len(self.registry),
            "live": len(self._live),
            "peak_live": self.peak_live_workers,
            "materializations": self.materializer.materializations,
            "label_shards_built": self.registry.built_label_shards,
            "cached_deltas": len(self.cache) if self.cache is not None else 0,
        }

    def workers_state(self) -> dict:
        # Defensive: a checkpoint taken with a cohort still live (engines
        # release at round end, so normally none) folds the live state into
        # the rows without dropping the live objects.
        for worker in self._live.values():
            self.materializer.release(worker)
        return {
            "format": "population",
            "registry": self.registry.state_dict(),
            "cache": self.cache.state_dict() if self.cache is not None else None,
        }

    def load_workers_state(self, state) -> None:
        if not isinstance(state, dict) or state.get("format") != "population":
            raise ValueError(
                "checkpoint holds an eager worker list but the engine runs "
                "with population='lazy'"
            )
        self.registry.load_state_dict(state["registry"])
        if self.cache is not None and state.get("cache") is not None:
            self.cache.load_state_dict(state["cache"])
        self._live.clear()
