"""Sharded, lazily-materialized worker populations.

This package decouples the *registered* population (compact metadata rows
in a :class:`~repro.population.registry.WorkerRegistry`) from the *live*
workers a round actually trains (rebuilt on demand by a
:class:`~repro.population.materializer.Materializer` and bounded by the
selected cohort).  The engines consume either through the
:class:`~repro.population.pool.WorkerPool` interface; ``config.population``
selects ``"eager"`` (today's worker list, the default) or ``"lazy"``
(registry + materializer, bit-exact with eager and scalable to millions of
registered workers).
"""

from repro.population.cache import DeltaCache
from repro.population.materializer import Materializer, WORKER_SEED_OFFSET
from repro.population.pool import (
    CANDIDATE_SEED_OFFSET,
    EagerWorkerPool,
    LazyWorkerPool,
    WorkerPool,
    as_worker_pool,
)
from repro.population.registry import (
    PartitionShards,
    SampledShards,
    ShardSource,
    WorkerRegistry,
    sample_distinct,
)

__all__ = [
    "CANDIDATE_SEED_OFFSET",
    "DeltaCache",
    "EagerWorkerPool",
    "LazyWorkerPool",
    "Materializer",
    "PartitionShards",
    "SampledShards",
    "ShardSource",
    "WORKER_SEED_OFFSET",
    "WorkerPool",
    "WorkerRegistry",
    "as_worker_pool",
    "sample_distinct",
]
