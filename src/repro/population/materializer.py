"""On-demand reconstruction of live workers from registry rows."""

from __future__ import annotations

from repro.core.worker import SplitWorker
from repro.data.dataset import Dataset
from repro.population.registry import WorkerRegistry

#: Per-worker seed offset -- the same formula the eager path uses in
#: :func:`repro.api.components.build_components`, which is what makes a
#: materialised worker's sampling stream bit-identical to an eager one.
WORKER_SEED_OFFSET = 1000


class Materializer:
    """Rebuilds a live :class:`SplitWorker` from its registry row.

    Construction mirrors the eager path exactly -- same dataset subset,
    same ``seed + 1000 + worker_id`` RNG stream, same optimiser
    hyper-parameters -- then restores the row's mutable state (participation
    count and, when the worker has trained before, its sampling state).
    A freshly constructed loader whose state is overwritten by
    ``load_state_dict`` is bit-identical to one that lived through the
    rounds, so materialisation is invisible to the training trajectory.
    """

    def __init__(
        self,
        registry: WorkerRegistry,
        train_dataset: Dataset,
        num_classes: int,
        seed: int,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 5.0,
    ) -> None:
        self.registry = registry
        self._train = train_dataset
        self._num_classes = num_classes
        self._seed = seed
        self._momentum = momentum
        self._weight_decay = weight_decay
        self._max_grad_norm = max_grad_norm
        self.materializations = 0

    def materialize(self, worker_id: int) -> SplitWorker:
        """Reconstruct the live worker for one registry row."""
        worker_id = int(worker_id)
        worker = SplitWorker(
            worker_id=worker_id,
            dataset=self._train.subset(self.registry.shard_indices(worker_id)),
            num_classes=self._num_classes,
            seed=self._seed + WORKER_SEED_OFFSET + worker_id,
            momentum=self._momentum,
            weight_decay=self._weight_decay,
            max_grad_norm=self._max_grad_norm,
        )
        worker.participation_count = self.registry.participation_count(worker_id)
        loader_state = self.registry.loader_state(worker_id)
        if loader_state is not None:
            worker.loader.load_state_dict(loader_state)
        self.materializations += 1
        return worker

    def release(self, worker: SplitWorker) -> None:
        """Fold a live worker's mutable state back into its registry row."""
        self.registry.store_worker_state(
            worker.worker_id,
            worker.participation_count,
            worker.loader.state_dict(),
        )
