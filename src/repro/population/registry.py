"""Sharded columnar worker registry.

A :class:`WorkerRegistry` stores each *registered* worker as a compact
metadata row -- shard descriptor, label-distribution vector, participation
history and (for workers that have actually trained) the mini-batch
sampling state -- instead of a live :class:`~repro.core.worker.SplitWorker`
object.  Rows are grouped into fixed-size shards and the expensive column
(the per-worker label distribution) is materialised one shard at a time,
only for rows a round actually touches, so registering a million workers
costs a few dense numpy allocations rather than a million model copies.

Shard descriptors come from a :class:`ShardSource`:

* :class:`PartitionShards` wraps the index lists produced by
  :func:`repro.data.partition.partition_dataset` -- the exact shards the
  eager path builds, which is what makes ``population="lazy"`` bit-exact
  against eager construction.
* :class:`SampledShards` derives each worker's shard lazily from a
  per-worker RNG stream (``spawned_rng``), so shard construction is O(1)
  in the registered population -- the mode used for million-worker
  registries where partitioning would be O(N) and yield empty shards.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.partition import label_distribution
from repro.utils.rng import spawned_rng

#: Seed offset separating the shard-sampling streams of :class:`SampledShards`
#: from every other stream derived from ``config.seed``.
SHARD_SEED_OFFSET = 614657


def sample_distinct(
    rng: np.random.Generator, population: int, count: int
) -> np.ndarray:
    """Draw ``count`` distinct ids from ``range(population)``, sorted.

    Rejection sampling keeps the cost O(count) instead of the O(population)
    a full permutation would pay, which is what keeps per-round planning
    flat as the registered population grows to millions.
    """
    if count >= population:
        return np.arange(population, dtype=np.int64)
    seen: set[int] = set()
    picked: list[int] = []
    while len(picked) < count:
        draws = rng.integers(0, population, size=2 * (count - len(picked)))
        for value in draws:
            value = int(value)
            if value not in seen:
                seen.add(value)
                picked.append(value)
                if len(picked) == count:
                    break
    return np.sort(np.asarray(picked, dtype=np.int64))


class ShardSource(abc.ABC):
    """Deterministic mapping from worker id to its data-shard indices."""

    #: Short name recorded in registry state for sanity checks.
    kind: str = "abstract"

    @abc.abstractmethod
    def shard_indices(self, worker_id: int) -> np.ndarray:
        """Train-set indices of the worker's local shard."""

    def num_samples(self, worker_id: int) -> int:
        """Shard size (defaults to materialising the indices)."""
        return int(self.shard_indices(worker_id).shape[0])


class PartitionShards(ShardSource):
    """Shards taken verbatim from :func:`partition_dataset` output."""

    kind = "partition"

    def __init__(self, shards: list[np.ndarray]) -> None:
        self._shards = [np.asarray(shard, dtype=np.int64) for shard in shards]

    def __len__(self) -> int:
        return len(self._shards)

    def shard_indices(self, worker_id: int) -> np.ndarray:
        return self._shards[worker_id]

    def num_samples(self, worker_id: int) -> int:
        return int(self._shards[worker_id].shape[0])


class SampledShards(ShardSource):
    """Per-worker shards drawn lazily from independent RNG streams.

    Worker ``i``'s shard is a sorted, duplicate-free sample of the train
    set drawn from ``spawned_rng(seed + SHARD_SEED_OFFSET, i)``; no state
    is kept per worker, so a million-worker registry costs nothing until a
    worker is actually materialised.
    """

    kind = "sampled"

    def __init__(self, train_size: int, samples_per_worker: int, seed: int = 0) -> None:
        if train_size <= 0:
            raise ValueError("train_size must be positive")
        if samples_per_worker <= 0:
            raise ValueError("samples_per_worker must be positive")
        self.train_size = train_size
        self.samples_per_worker = min(samples_per_worker, train_size)
        self._seed = seed + SHARD_SEED_OFFSET

    def shard_indices(self, worker_id: int) -> np.ndarray:
        rng = spawned_rng(self._seed, worker_id)
        picked = rng.permutation(self.train_size)[: self.samples_per_worker]
        return np.sort(picked.astype(np.int64))

    def num_samples(self, worker_id: int) -> int:
        return self.samples_per_worker


class WorkerRegistry:
    """Columnar store of per-worker metadata rows, sharded by worker id.

    Columns:

    * participation history -- a dense int64 array (8 bytes/worker), updated
      when a materialised worker is released;
    * label-distribution vectors -- built one registry shard at a time, on
      first access to any row in the shard;
    * sampling state -- :class:`~repro.data.loader.BatchLoader` state dicts,
      kept only for workers that have actually been materialised (sparse).

    Checkpoints serialise the sparse columns only (participation as a
    ``{id: count}`` mapping over non-zero rows), so checkpoint size scales
    with the number of *participants*, not the registered population.
    """

    def __init__(
        self,
        num_workers: int,
        num_classes: int,
        targets: np.ndarray,
        source: ShardSource,
        shard_size: int = 4096,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.num_workers = num_workers
        self.num_classes = num_classes
        self.shard_size = shard_size
        self.source = source
        self._targets = np.asarray(targets)
        self._participation = np.zeros(num_workers, dtype=np.int64)
        self._depths = np.zeros(num_workers, dtype=np.int64)
        self._loader_states: dict[int, dict] = {}
        self._label_shards: dict[int, np.ndarray] = {}
        self._label_built: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return self.num_workers

    # -- shard descriptors ---------------------------------------------------
    def _check_id(self, worker_id: int) -> int:
        worker_id = int(worker_id)
        if not 0 <= worker_id < self.num_workers:
            raise IndexError(
                f"worker id {worker_id} outside registry of {self.num_workers}"
            )
        return worker_id

    def shard_indices(self, worker_id: int) -> np.ndarray:
        """Train-set indices of the worker's data shard."""
        return self.source.shard_indices(self._check_id(worker_id))

    def num_samples(self, worker_id: int) -> int:
        """Size of the worker's data shard."""
        return self.source.num_samples(self._check_id(worker_id))

    # -- label distributions -------------------------------------------------
    def _label_row(self, worker_id: int) -> np.ndarray:
        """The cached label-distribution row of one worker, built on demand.

        Rows live in per-shard arrays but are filled individually: a
        candidate pool scattered over a million-row registry touches a few
        rows in many shards, and building whole shards for those would put
        an O(shard_size) factor back into every round.
        """
        shard_id = worker_id // self.shard_size
        rows = self._label_shards.get(shard_id)
        if rows is None:
            start = shard_id * self.shard_size
            stop = min(start + self.shard_size, self.num_workers)
            rows = np.empty((stop - start, self.num_classes), dtype=np.float64)
            self._label_shards[shard_id] = rows
            self._label_built[shard_id] = np.zeros(stop - start, dtype=bool)
        offset = worker_id % self.shard_size
        if not self._label_built[shard_id][offset]:
            rows[offset] = label_distribution(
                self._targets,
                self.source.shard_indices(worker_id),
                self.num_classes,
            )
            self._label_built[shard_id][offset] = True
        return rows[offset]

    def label_distributions(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Label-distribution rows ``V_i`` for ``ids`` (all rows if ``None``)."""
        if ids is None:
            ids = np.arange(self.num_workers, dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty((ids.shape[0], self.num_classes), dtype=np.float64)
        for position, worker_id in enumerate(ids):
            out[position] = self._label_row(self._check_id(worker_id))
        return out

    @property
    def built_label_shards(self) -> int:
        """How many registry shards have materialised label rows."""
        return len(self._label_shards)

    # -- participation + sampling state --------------------------------------
    def participation_counts(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Participation column ``K_i`` (float64 copy, full or row subset)."""
        if ids is None:
            return self._participation.astype(np.float64)
        return self._participation[np.asarray(ids, dtype=np.int64)].astype(np.float64)

    def participation_count(self, worker_id: int) -> int:
        """Participation count of one worker."""
        return int(self._participation[self._check_id(worker_id)])

    def loader_state(self, worker_id: int) -> dict | None:
        """Stored sampling state, or ``None`` for a never-materialised worker."""
        return self._loader_states.get(self._check_id(worker_id))

    def store_worker_state(
        self, worker_id: int, participation_count: int, loader_state: dict
    ) -> None:
        """Fold a released worker's mutable state back into its row."""
        worker_id = self._check_id(worker_id)
        self._participation[worker_id] = int(participation_count)
        self._loader_states[worker_id] = loader_state

    # -- split depths ---------------------------------------------------------
    def record_depths(self, ids, depths: dict[int, int]) -> None:
        """Store policy-assigned cut depths as a metadata column.

        Zero means "never assigned" (the uniform global cut); the column
        stays all-zero -- and absent from checkpoints -- unless a
        split-point policy actually assigns depths.
        """
        for worker_id in ids:
            worker_id = self._check_id(worker_id)
            self._depths[worker_id] = int(depths[worker_id])

    def depth_of(self, worker_id: int) -> int:
        """Last recorded cut depth of one worker (0 if never assigned)."""
        return int(self._depths[self._check_id(worker_id)])

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Sparse row state: participants only, not the registered population."""
        nonzero = np.flatnonzero(self._participation)
        state = {
            "num_workers": self.num_workers,
            "source_kind": self.source.kind,
            "participation": {
                str(int(wid)): int(self._participation[wid]) for wid in nonzero
            },
            "loaders": {
                str(wid): state for wid, state in self._loader_states.items()
            },
        }
        assigned = np.flatnonzero(self._depths)
        if assigned.shape[0]:
            # Only present when a split-point policy ran, so uniform-cut
            # checkpoints keep the historical format byte for byte.
            state["depths"] = {
                str(int(wid)): int(self._depths[wid]) for wid in assigned
            }
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore rows captured by :meth:`state_dict`."""
        if int(state["num_workers"]) != self.num_workers:
            raise ValueError(
                f"checkpoint registry has {state['num_workers']} workers, "
                f"registry has {self.num_workers}"
            )
        self._participation[:] = 0
        for wid, count in state.get("participation", {}).items():
            self._participation[self._check_id(int(wid))] = int(count)
        self._loader_states = {
            self._check_id(int(wid)): loader_state
            for wid, loader_state in state.get("loaders", {}).items()
        }
        self._depths[:] = 0
        for wid, depth in state.get("depths", {}).items():
            self._depths[self._check_id(int(wid))] = int(depth)
