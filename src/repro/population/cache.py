"""Bounded per-worker bottom-model delta cache.

When a lazily-materialised worker is rebuilt for a round, its bottom model
is reconstructed as ``global + delta`` from a bounded LRU cache of the
deltas recent participants produced; a cache miss falls back to the plain
global model, which is exactly the FedAvg-install semantics the engines
already apply at the start of every round.  The cache therefore bounds the
per-worker model state a population can pin regardless of how many workers
ever participated.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("population.cache")


class DeltaCache:
    """LRU cache of per-worker bottom-model deltas against the global model."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._deltas: "OrderedDict[int, dict[str, np.ndarray]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._round_hits = 0
        self._round_misses = 0

    def __len__(self) -> int:
        return len(self._deltas)

    def __contains__(self, worker_id: int) -> bool:
        return int(worker_id) in self._deltas

    def put(
        self,
        worker_id: int,
        state: dict[str, np.ndarray],
        reference: dict[str, np.ndarray],
    ) -> None:
        """Store ``state - reference`` for a worker, evicting the LRU entry."""
        worker_id = int(worker_id)
        self._deltas[worker_id] = {
            key: np.asarray(state[key]) - np.asarray(reference[key])
            for key in state
        }
        self._deltas.move_to_end(worker_id)
        while len(self._deltas) > self.capacity:
            self._deltas.popitem(last=False)

    def reconstruct(
        self, worker_id: int, reference: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray] | None:
        """``reference + delta`` on a hit, ``None`` (use the global) on a miss."""
        delta = self._deltas.get(int(worker_id))
        if delta is None:
            self.misses += 1
            self._round_misses += 1
            return None
        self.hits += 1
        self._round_hits += 1
        self._deltas.move_to_end(int(worker_id))
        return {key: np.asarray(reference[key]) + delta[key] for key in delta}

    def take_round_counts(self) -> tuple[int, int]:
        """This round's ``(hits, misses)``; resets the per-round counters."""
        counts = (self._round_hits, self._round_misses)
        self._round_hits = 0
        self._round_misses = 0
        return counts

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Cache contents in LRU order (oldest first) plus lifetime counters."""
        return {
            "capacity": self.capacity,
            "entries": [
                [wid, {key: value.copy() for key, value in delta.items()}]
                for wid, delta in self._deltas.items()
            ],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore contents captured by :meth:`state_dict`.

        The checkpointed ``capacity`` wins over the configured one: a resume
        at a different capacity would otherwise silently trim the warm cache
        (or leave headroom the original run never had) and change the
        hit/miss trajectory, breaking bit-exact resume.
        """
        capacity = int(state.get("capacity", self.capacity))
        if capacity != self.capacity:
            logger.warning(
                "delta cache capacity mismatch: checkpoint has %d, "
                "configured %d; restoring the checkpointed capacity",
                capacity,
                self.capacity,
            )
            self.capacity = capacity
        self._deltas = OrderedDict(
            (
                int(wid),
                {key: np.asarray(value) for key, value in delta.items()},
            )
            for wid, delta in state.get("entries", [])
        )
        while len(self._deltas) > self.capacity:
            self._deltas.popitem(last=False)
        self.hits = int(state.get("hits", 0))
        self.misses = int(state.get("misses", 0))
        self._round_hits = 0
        self._round_misses = 0
