"""Trainable parameter container."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Attributes:
        data: The parameter values (``float64`` ndarray).
        grad: Accumulated gradient of the training loss w.r.t. ``data``;
            same shape as ``data``.
        name: Optional human-readable name set by the owning module.
    """

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zeros in place."""
        self.grad.fill(0.0)

    def copy(self) -> "Parameter":
        """Return a deep copy (data and grad)."""
        clone = Parameter(self.data.copy(), name=self.name)
        clone.grad = self.grad.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"
