"""Optimizers and learning-rate schedules.

The paper trains every model with mini-batch SGD (Eq. 2-3, 15-16); the
learning rate decays multiplicatively per communication round, and
MergeSFL additionally scales each worker's learning rate with its batch
size (Section IV-B).  ``SGD.lr`` is therefore a plain mutable attribute so
the training loops can re-scale it every round.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError(f"max_grad_norm must be positive, got {max_grad_norm}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        """Zero all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def grad_norm(self) -> float:
        """Global L2 norm of all accumulated gradients."""
        total = 0.0
        for param in self.parameters:
            total += float(np.sum(param.grad**2))
        return float(np.sqrt(total))

    def clip_gradients(self) -> None:
        """Scale gradients in place so the global norm stays within bounds."""
        if self.max_grad_norm is None:
            return
        norm = self.grad_norm()
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                param.grad *= scale

    def state_dict(self) -> dict:
        """Learning rate and momentum buffers for checkpointing."""
        return {
            "lr": self.lr,
            "velocity": [buffer.copy() for buffer in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ValueError(
                f"checkpoint has {len(velocity)} momentum buffers, "
                f"optimizer has {len(self._velocity)}"
            )
        restored = []
        for buffer, current in zip(velocity, self._velocity):
            buffer = np.asarray(buffer, dtype=np.float64)
            if buffer.shape != current.shape:
                raise ValueError(
                    f"momentum buffer shape mismatch: expected "
                    f"{current.shape}, got {buffer.shape}"
                )
            restored.append(buffer.copy())
        self.lr = float(state["lr"])
        self._velocity = restored

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        self.clip_gradients()
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class ExponentialLR:
    """Multiply the learning rate by ``gamma`` after each ``step()`` call."""

    def __init__(self, optimizer: SGD, gamma: float) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._steps = 0

    def step(self) -> None:
        """Advance one round and decay the learning rate."""
        self._steps += 1
        self.optimizer.lr = self.base_lr * (self.gamma**self._steps)

    @property
    def current_lr(self) -> float:
        """Learning rate currently installed on the optimizer."""
        return self.optimizer.lr


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._steps = 0

    def step(self) -> None:
        """Advance one step, decaying at every ``step_size`` boundary."""
        self._steps += 1
        exponent = self._steps // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**exponent)

    @property
    def current_lr(self) -> float:
        """Learning rate currently installed on the optimizer."""
        return self.optimizer.lr
