"""Model zoo: the four architectures used in the paper's evaluation.

The paper trains CNN-H (HAR), CNN-S (Google Speech), AlexNet (CIFAR-10) and
VGG16 (IMAGE-100).  The reproduction keeps the architectural shape of each
network (number of weighted layers, conv/FC boundary, default split layer)
but scales channel widths down so that the CPU-only simulation remains
tractable.  A ``width`` multiplier restores larger models when desired.

Split positions follow Section V-A of the paper: CNN-H at the 3rd weighted
layer, CNN-S at the 4th, AlexNet at the 5th and VGG16 at the 13th -- i.e. in
every case the convolutional stack stays on the worker and the fully
connected classifier moves to the parameter server.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.api.registry import MODELS, register_model
from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool1d,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Sequential
from repro.utils.rng import new_rng, spawn_rngs


def _scaled(base: int, width: float) -> int:
    """Scale a channel count, never dropping below one."""
    return max(1, int(round(base * width)))


@register_model("mlp", input_kind="vector", split_after_weighted=1, paper_name="MLP")
def build_mlp(
    input_dim: int,
    num_classes: int,
    hidden_dims: tuple[int, ...] = (64, 32),
    seed: int | None = None,
) -> Sequential:
    """A small multi-layer perceptron, mostly used by unit tests."""
    rngs = spawn_rngs(seed if seed is not None else 0, len(hidden_dims) + 1)
    layers = []
    previous = input_dim
    for index, hidden in enumerate(hidden_dims):
        layers.append(Linear(previous, hidden, rng=rngs[index]))
        layers.append(ReLU())
        previous = hidden
    layers.append(Linear(previous, num_classes, rng=rngs[-1]))
    return Sequential(layers)


@register_model("cnn_h", input_kind="sequence", split_after_weighted=3, paper_name="CNN-H")
def build_cnn_h(
    num_classes: int = 6,
    in_channels: int = 9,
    sequence_length: int = 128,
    width: float = 1.0,
    seed: int | None = None,
) -> Sequential:
    """CNN-H: three conv layers + two FC layers, tailored to the HAR dataset."""
    rngs = spawn_rngs(seed if seed is not None else 0, 5)
    c1, c2, c3 = _scaled(16, width), _scaled(32, width), _scaled(32, width)
    hidden = _scaled(64, width)
    after_pool = sequence_length // 8
    if after_pool < 1:
        raise ConfigurationError(
            f"sequence_length={sequence_length} too short for three pooling stages"
        )
    return Sequential([
        Conv1d(in_channels, c1, kernel_size=5, padding=2, rng=rngs[0]),
        ReLU(),
        MaxPool1d(2),
        Conv1d(c1, c2, kernel_size=5, padding=2, rng=rngs[1]),
        ReLU(),
        MaxPool1d(2),
        Conv1d(c2, c3, kernel_size=5, padding=2, rng=rngs[2]),
        ReLU(),
        MaxPool1d(2),
        Flatten(),
        Linear(c3 * after_pool, hidden, rng=rngs[3]),
        ReLU(),
        Linear(hidden, num_classes, rng=rngs[4]),
    ])


@register_model("cnn_s", input_kind="sequence", split_after_weighted=4, paper_name="CNN-S")
def build_cnn_s(
    num_classes: int = 10,
    in_channels: int = 1,
    sequence_length: int = 1024,
    width: float = 1.0,
    seed: int | None = None,
) -> Sequential:
    """CNN-S: four 1-D conv layers + one FC layer, for speech recognition."""
    rngs = spawn_rngs(seed if seed is not None else 0, 5)
    c1 = _scaled(8, width)
    c2 = _scaled(16, width)
    c3 = _scaled(32, width)
    c4 = _scaled(32, width)
    after_pool = sequence_length // 16
    if after_pool < 1:
        raise ConfigurationError(
            f"sequence_length={sequence_length} too short for four pooling stages"
        )
    return Sequential([
        Conv1d(in_channels, c1, kernel_size=9, padding=4, rng=rngs[0]),
        ReLU(),
        MaxPool1d(2),
        Conv1d(c1, c2, kernel_size=5, padding=2, rng=rngs[1]),
        ReLU(),
        MaxPool1d(2),
        Conv1d(c2, c3, kernel_size=5, padding=2, rng=rngs[2]),
        ReLU(),
        MaxPool1d(2),
        Conv1d(c3, c4, kernel_size=3, padding=1, rng=rngs[3]),
        ReLU(),
        MaxPool1d(2),
        Flatten(),
        Linear(c4 * after_pool, num_classes, rng=rngs[4]),
    ])


@register_model("alexnet_s", input_kind="image", split_after_weighted=5, paper_name="AlexNet")
def build_alexnet_s(
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 32,
    width: float = 1.0,
    seed: int | None = None,
) -> Sequential:
    """AlexNet-S: five conv layers + two hidden FC layers + output layer.

    Mirrors the 8-layer AlexNet used for CIFAR-10 in the paper, scaled for a
    32x32 input and CPU training.
    """
    rngs = spawn_rngs(seed if seed is not None else 0, 8)
    c1 = _scaled(16, width)
    c2 = _scaled(32, width)
    c3 = _scaled(48, width)
    c4 = _scaled(32, width)
    c5 = _scaled(32, width)
    h1 = _scaled(128, width)
    h2 = _scaled(64, width)
    spatial = image_size // 8
    if spatial < 1:
        raise ConfigurationError(f"image_size={image_size} too small for AlexNet-S")
    return Sequential([
        Conv2d(in_channels, c1, kernel_size=3, padding=1, rng=rngs[0]),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c1, c2, kernel_size=3, padding=1, rng=rngs[1]),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c2, c3, kernel_size=3, padding=1, rng=rngs[2]),
        ReLU(),
        Conv2d(c3, c4, kernel_size=3, padding=1, rng=rngs[3]),
        ReLU(),
        Conv2d(c4, c5, kernel_size=3, padding=1, rng=rngs[4]),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(c5 * spatial * spatial, h1, rng=rngs[5]),
        ReLU(),
        Dropout(0.1, rng=new_rng(seed)),
        Linear(h1, h2, rng=rngs[6]),
        ReLU(),
        Linear(h2, num_classes, rng=rngs[7]),
    ])


@register_model("vgg_s", input_kind="image", split_after_weighted=13, paper_name="VGG16")
def build_vgg_s(
    num_classes: int = 100,
    in_channels: int = 3,
    image_size: int = 32,
    width: float = 1.0,
    seed: int | None = None,
) -> Sequential:
    """VGG-S: thirteen 3x3 conv layers + two FC layers + output layer.

    Follows the VGG16 layout (conv blocks of 2/2/3/3/3 with max pooling)
    with scaled-down channel widths so IMAGE-100-scale experiments run on
    CPU.  The default split layer is after the 13th conv, exactly as in the
    paper.
    """
    block_sizes = [2, 2, 3, 3, 3]
    base_channels = [8, 16, 24, 32, 32]
    rngs = spawn_rngs(seed if seed is not None else 0, 16)
    rng_index = 0
    layers: list = []
    channels = in_channels
    spatial = image_size
    for block, (count, base) in enumerate(zip(block_sizes, base_channels)):
        out_channels = _scaled(base, width)
        for __ in range(count):
            layers.append(
                Conv2d(channels, out_channels, kernel_size=3, padding=1,
                       rng=rngs[rng_index])
            )
            layers.append(ReLU())
            channels = out_channels
            rng_index += 1
        if spatial >= 2:
            layers.append(MaxPool2d(2))
            spatial //= 2
    if spatial < 1:
        raise ConfigurationError(f"image_size={image_size} too small for VGG-S")
    h1 = _scaled(128, width)
    h2 = _scaled(64, width)
    layers.extend([
        Flatten(),
        Linear(channels * spatial * spatial, h1, rng=rngs[13]),
        ReLU(),
        Dropout(0.1, rng=new_rng(seed)),
        Linear(h1, h2, rng=rngs[14]),
        ReLU(),
        Linear(h2, num_classes, rng=rngs[15]),
    ])
    return Sequential(layers)


#: Built-in builders (kept for backwards compatibility; the authoritative,
#: extensible mapping is :data:`repro.api.registry.MODELS`).
MODEL_REGISTRY: dict[str, Callable[..., Sequential]] = {
    "mlp": build_mlp,
    "cnn_h": build_cnn_h,
    "cnn_s": build_cnn_s,
    "alexnet_s": build_alexnet_s,
    "vgg_s": build_vgg_s,
}

#: Snapshot of the original dict entries, so mutations of ``MODEL_REGISTRY``
#: by legacy code remain detectable and keep their pre-registry behaviour.
_MODEL_REGISTRY_BUILTINS = dict(MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Sequential:
    """Build a model by registry name.

    Resolves through :data:`repro.api.registry.MODELS`, so models registered
    by third-party code (``@register_model``) work here too.  Entries added
    to -- or replaced in -- the legacy ``MODEL_REGISTRY`` dict also keep
    working: a mutated dict entry takes precedence, as it did before the
    registries existed.
    """
    legacy = MODEL_REGISTRY.get(name)
    if legacy is not None and legacy is not _MODEL_REGISTRY_BUILTINS.get(name):
        return legacy(**kwargs)
    return MODELS.get(name)(**kwargs)


def has_default_split(name: str) -> bool:
    """Whether the model declares a split point (``split_after_weighted``).

    Models without one can still run full-model (FL) algorithms; split
    algorithms require the metadata.
    """
    return name in MODELS and "split_after_weighted" in MODELS.metadata(name)


def default_split_layer(name: str, model: Sequential) -> int:
    """Return the Sequential index at which ``model`` should be split.

    The cut is placed after the k-th weighted layer (the model's
    ``split_after_weighted`` registry metadata; the paper's split choices
    for the built-in zoo) and additionally swallows any parameter-free
    layers (ReLU, pooling) that immediately follow it, so the activation of
    the split layer is computed on the worker.
    """
    if not has_default_split(name):
        raise ConfigurationError(f"no default split registered for model {name!r}")
    target = int(MODELS.metadata(name)["split_after_weighted"])
    weighted_seen = 0
    split_index = None
    for index, layer in enumerate(model.layers):
        if layer.parameters():
            weighted_seen += 1
            if weighted_seen == target:
                split_index = index + 1
                break
    if split_index is None:
        raise ConfigurationError(
            f"model {name!r} has fewer than {target} weighted layers"
        )
    # Include trailing parameter-free layers (activation / pooling) in the bottom.
    while split_index < len(model) - 1 and not model.layers[split_index].parameters():
        split_index += 1
    if split_index >= len(model):
        raise ConfigurationError("split would leave an empty top model")
    return split_index


def estimate_forward_flops(model: Sequential, input_shape: tuple[int, ...]) -> int:
    """Estimate the multiply-accumulate count of one forward pass per sample.

    Used by the device simulator to convert a model into per-sample compute
    time on a given Jetson profile.  The estimate walks the network with a
    single dummy sample and charges 2*fan_in MACs per output element of each
    weighted layer.
    """
    dummy = np.zeros((1, *input_shape), dtype=np.float64)
    total = 0
    activations = dummy
    for layer in model.layers:
        outputs = layer.forward(activations)
        if isinstance(layer, (Conv2d, Conv1d)):
            fan_in = layer.weight.data.shape[1]
            total += 2 * fan_in * int(np.prod(outputs.shape[1:]))
        elif isinstance(layer, Linear):
            total += 2 * layer.in_features * layer.out_features
        activations = outputs
    return int(total)
