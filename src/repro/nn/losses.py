"""Loss functions.

Losses are not :class:`~repro.nn.module.Module` instances because they take
two arguments (predictions and targets).  Each loss returns the scalar loss
from ``forward`` and the gradient of the loss with respect to the
predictions from ``backward``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot rows."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels (mean reduction)."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Compute the mean cross-entropy loss.

        Args:
            logits: Raw scores of shape ``(batch, num_classes)``.
            labels: Integer labels of shape ``(batch,)``.
        """
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D, got {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"batch mismatch: logits {logits.shape[0]} vs labels {labels.shape[0]}"
            )
        probs = softmax(logits)
        self._cache = (probs, labels)
        batch = logits.shape[0]
        log_likelihood = -np.log(probs[np.arange(batch), labels] + 1e-12)
        return float(log_likelihood.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        batch = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        return grad / batch

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error (mean over all elements)."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / predictions.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
