"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform initialisation suitable for ReLU networks.

    Args:
        shape: Shape of the weight tensor.
        fan_in: Number of input connections per output unit.
        rng: Random generator.
    """
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
