"""Neural-network layers."""

from repro.nn.layers.linear import Linear
from repro.nn.layers.conv import Conv2d, Conv1d
from repro.nn.layers.pooling import MaxPool2d, MaxPool1d, AvgPool2d
from repro.nn.layers.activations import ReLU, Tanh, Sigmoid
from repro.nn.layers.shape import Flatten
from repro.nn.layers.regularization import Dropout, BatchNorm1d, BatchNorm2d

__all__ = [
    "Linear",
    "Conv2d",
    "Conv1d",
    "MaxPool2d",
    "MaxPool1d",
    "AvgPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "BatchNorm1d",
    "BatchNorm2d",
]
