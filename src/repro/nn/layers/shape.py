"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)
