"""Regularisation layers: dropout and batch normalisation."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import new_rng


class Dropout(Module):
    """Inverted dropout: active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else new_rng()
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def extra_state(self) -> dict:
        return {"rng": self._rng.bit_generator.state}

    def load_extra_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]


class _BatchNormBase(Module):
    """Shared machinery for 1-D and 2-D batch normalisation."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def extra_state(self) -> dict:
        return {
            "running_mean": self.running_mean.copy(),
            "running_var": self.running_var.copy(),
        }

    def load_extra_state(self, state: dict) -> None:
        self.running_mean = np.asarray(state["running_mean"], dtype=np.float64).copy()
        self.running_var = np.asarray(state["running_var"], dtype=np.float64).copy()

    def _normalize(self, flat: np.ndarray) -> np.ndarray:
        """Normalise a (samples, features) view and cache backward state."""
        if self.training:
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (flat - mean) * inv_std
        self._cache = (normalized, inv_std, flat - mean)
        return normalized * self.gamma.data + self.beta.data

    def _denormalize_grad(self, grad_flat: np.ndarray) -> np.ndarray:
        """Backward pass on the (samples, features) view."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, centered = self._cache
        samples = grad_flat.shape[0]
        self.gamma.grad += (grad_flat * normalized).sum(axis=0)
        self.beta.grad += grad_flat.sum(axis=0)
        if not self.training:
            return grad_flat * self.gamma.data * inv_std
        grad_norm = grad_flat * self.gamma.data
        grad_var = (grad_norm * centered).sum(axis=0) * -0.5 * inv_std**3
        grad_mean = (-grad_norm * inv_std).sum(axis=0) + grad_var * (
            -2.0 * centered.mean(axis=0)
        )
        return (
            grad_norm * inv_std
            + grad_var * 2.0 * centered / samples
            + grad_mean / samples
        )


class BatchNorm1d(_BatchNormBase):
    """Batch normalisation over ``(batch, features)`` inputs."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 2 or inputs.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expects (batch, {self.num_features}), got {inputs.shape}"
            )
        return self._normalize(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self._denormalize_grad(grad_output)


class BatchNorm2d(_BatchNormBase):
    """Batch normalisation over ``(batch, channels, height, width)`` inputs."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expects (batch, {self.num_features}, H, W), "
                f"got {inputs.shape}"
            )
        self._input_shape = inputs.shape
        flat = inputs.transpose(0, 2, 3, 1).reshape(-1, self.num_features)
        out = self._normalize(flat)
        batch, channels, height, width = inputs.shape
        return out.reshape(batch, height, width, channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._input_shape
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.num_features)
        grad = self._denormalize_grad(grad_flat)
        return grad.reshape(batch, height, width, channels).transpose(0, 3, 1, 2)
