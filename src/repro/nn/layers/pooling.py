"""Pooling layers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.module import Module


def _pool_pair(kernel_size: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(kernel_size, tuple):
        return kernel_size
    return (kernel_size, kernel_size)


class MaxPool2d(Module):
    """Non-overlapping 2-D max pooling with ``stride == kernel_size``.

    ``kernel_size`` may be an int (square window) or an ``(kh, kw)`` tuple.
    Inputs whose spatial size is not divisible by the kernel are truncated
    on the right/bottom (the same convention PyTorch uses with default
    ceil_mode=False).
    """

    def __init__(self, kernel_size: int | tuple[int, int]) -> None:
        super().__init__()
        kh, kw = _pool_pair(kernel_size)
        if kh <= 0 or kw <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = (kh, kw)
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(f"MaxPool2d expects 4-D input, got {inputs.shape}")
        kh, kw = self.kernel_size
        batch, channels, height, width = inputs.shape
        out_h, out_w = height // kh, width // kw
        if out_h == 0 or out_w == 0:
            raise ShapeError(
                f"input spatial size {height}x{width} smaller than kernel {self.kernel_size}"
            )
        trimmed = inputs[:, :, : out_h * kh, : out_w * kw]
        windows = trimmed.reshape(batch, channels, out_h, kh, out_w, kw)
        out = windows.max(axis=(3, 5))
        # Mask of the max positions per window (ties share the gradient).
        expanded = out[:, :, :, None, :, None]
        mask = (windows == expanded).astype(np.float64)
        counts = mask.sum(axis=(3, 5), keepdims=True)
        mask = mask / counts
        self._cache = (mask, inputs.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mask, input_shape = self._cache
        kh, kw = self.kernel_size
        batch, channels, height, width = input_shape
        out_h, out_w = height // kh, width // kw
        grad_windows = mask * grad_output[:, :, :, None, :, None]
        grad_trimmed = grad_windows.reshape(batch, channels, out_h * kh, out_w * kw)
        grad_input = np.zeros(input_shape, dtype=np.float64)
        grad_input[:, :, : out_h * kh, : out_w * kw] = grad_trimmed
        return grad_input


class MaxPool1d(Module):
    """Non-overlapping 1-D max pooling, delegating to :class:`MaxPool2d`."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self._pool = MaxPool2d((1, kernel_size))
        self.kernel_size = kernel_size

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 3:
            raise ShapeError(f"MaxPool1d expects 3-D input, got {inputs.shape}")
        out = self._pool.forward(inputs[:, :, None, :])
        return out[:, :, 0, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self._pool.backward(grad_output[:, :, None, :])
        return grad[:, :, 0, :]


class AvgPool2d(Module):
    """Non-overlapping 2-D average pooling with ``stride == kernel_size``."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(f"AvgPool2d expects 4-D input, got {inputs.shape}")
        k = self.kernel_size
        batch, channels, height, width = inputs.shape
        out_h, out_w = height // k, width // k
        if out_h == 0 or out_w == 0:
            raise ShapeError(
                f"input spatial size {height}x{width} smaller than kernel {k}"
            )
        self._input_shape = inputs.shape
        trimmed = inputs[:, :, : out_h * k, : out_w * k]
        windows = trimmed.reshape(batch, channels, out_h, k, out_w, k)
        return windows.mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        batch, channels, height, width = self._input_shape
        out_h, out_w = height // k, width // k
        grad = np.repeat(np.repeat(grad_output, k, axis=2), k, axis=3) / (k * k)
        grad_input = np.zeros(self._input_shape, dtype=np.float64)
        grad_input[:, :, : out_h * k, : out_w * k] = grad
        return grad_input
