"""Convolutional layers implemented with im2col/col2im.

The 2-D and 1-D convolutions are the workhorses of the paper's model zoo
(CNN-H, CNN-S, AlexNet, VGG16).  They are implemented with explicit column
matrices so both the forward pass and the backward pass are dense GEMMs,
which keeps the CPU-only simulation fast enough for the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import kaiming_uniform, zeros
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import new_rng


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def im2col(
    inputs: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold image patches into columns.

    Args:
        inputs: Array of shape ``(batch, channels, height, width)``.
        kernel: ``(kh, kw)`` kernel size.
        stride: ``(sh, sw)`` stride.
        padding: ``(ph, pw)`` zero padding.

    Returns:
        Tuple of the column tensor with shape
        ``(batch, channels * kh * kw, out_h * out_w)`` and ``(out_h, out_w)``.
    """
    batch, channels, height, width = inputs.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution output would be empty for input {inputs.shape} "
            f"kernel {kernel} stride {stride} padding {padding}"
        )
    padded = np.pad(
        inputs, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant"
    )
    cols = np.empty(
        (batch, channels, kh, kw, out_h, out_w), dtype=inputs.dtype
    )
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:sh, j:j_end:sw]
    cols = cols.reshape(batch, channels * kh * kw, out_h * out_w)
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    output_size: tuple[int, int],
) -> np.ndarray:
    """Fold column gradients back into image-shaped gradients (adjoint of im2col)."""
    batch, channels, height, width = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = output_size
    cols = cols.reshape(batch, channels, kh, kw, out_h, out_w)
    padded = np.zeros(
        (batch, channels, height + 2 * ph, width + 2 * pw), dtype=cols.dtype
    )
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:ph + height, pw:pw + width]


class Conv2d(Module):
    """2-D convolution over ``(batch, channels, height, width)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng if rng is not None else new_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        fan_in = in_channels * self.kernel_size[0] * self.kernel_size[1]
        self.weight = Parameter(
            kaiming_uniform((out_channels, fan_in), fan_in, rng), name="weight"
        )
        self.bias = Parameter(zeros((out_channels,)), name="bias") if bias else None
        self._cache: tuple[np.ndarray, tuple[int, ...], tuple[int, int]] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expects (batch, {self.in_channels}, H, W), got {inputs.shape}"
            )
        cols, out_size = im2col(inputs, self.kernel_size, self.stride, self.padding)
        self._cache = (cols, inputs.shape, out_size)
        out = np.einsum("of,bfl->bol", self.weight.data, cols)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        batch = inputs.shape[0]
        return out.reshape(batch, self.out_channels, out_size[0], out_size[1])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape, out_size = self._cache
        batch = input_shape[0]
        grad = grad_output.reshape(batch, self.out_channels, -1)
        self.weight.grad += np.einsum("bol,bfl->of", grad, cols)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2))
        grad_cols = np.einsum("of,bol->bfl", self.weight.data, grad)
        return col2im(
            grad_cols, input_shape, self.kernel_size, self.stride, self.padding, out_size
        )

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class Conv1d(Module):
    """1-D convolution over ``(batch, channels, length)`` inputs.

    Implemented by delegating to the 2-D machinery with a height of one,
    which keeps a single, well-tested im2col implementation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self._conv = Conv2d(
            in_channels,
            out_channels,
            kernel_size=(1, kernel_size),
            stride=(1, stride),
            padding=(0, padding),
            bias=bias,
            rng=rng,
        )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    @property
    def weight(self) -> Parameter:
        """Underlying weight parameter (shared with the 2-D implementation)."""
        return self._conv.weight

    @property
    def bias(self) -> Parameter | None:
        """Underlying bias parameter."""
        return self._conv.bias

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 3 or inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expects (batch, {self.in_channels}, L), got {inputs.shape}"
            )
        out = self._conv.forward(inputs[:, :, None, :])
        return out[:, :, 0, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self._conv.backward(grad_output[:, :, None, :])
        return grad[:, :, 0, :]

    def parameters(self) -> list[Parameter]:
        return self._conv.parameters()
