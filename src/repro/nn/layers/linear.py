"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import kaiming_uniform, zeros
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import new_rng


class Linear(Module):
    """Affine transform ``y = x W^T + b``.

    Args:
        in_features: Input dimensionality.
        out_features: Output dimensionality.
        bias: Whether to learn an additive bias.
        rng: Generator used for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else new_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform((out_features, in_features), in_features, rng),
            name="weight",
        )
        self.bias = Parameter(zeros((out_features,)), name="bias") if bias else None
        self._cache_input: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear expects (batch, {self.in_features}), got {inputs.shape}"
            )
        self._cache_input = inputs
        out = inputs @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward")
        inputs = self._cache_input
        self.weight.grad += grad_output.T @ inputs
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params
