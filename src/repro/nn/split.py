"""Model splitting: the defining operation of split federated learning.

A full model ``w`` is carved at the *split layer* into a bottom submodel
``w_b`` (trained on workers) and a top submodel ``w_p`` (trained on the
parameter server).  The bottom's output at the split layer is the *feature*
(smashed data) exchanged with the server; the gradient flowing back into
the split layer is what the server dispatches to workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SplitError
from repro.nn.module import Module, Sequential


@dataclass
class SplitModel:
    """The two halves of a split model.

    Attributes:
        bottom: Worker-side submodel (input layer up to, excluding, the
            split position).
        top: Server-side submodel (split position to the output layer).
        split_index: Index in the original ``Sequential`` where the cut was
            made.
    """

    bottom: Sequential
    top: Sequential
    split_index: int

    def full_forward(self, inputs):
        """Run the two halves back to back (used for evaluation)."""
        return self.top.forward(self.bottom.forward(inputs))


def split_model(model: Module, split_index: int) -> SplitModel:
    """Split a :class:`Sequential` model at ``split_index``.

    Layers ``[0, split_index)`` become the bottom model and layers
    ``[split_index, len(model))`` become the top model.  The returned halves
    are deep copies, so mutating them does not affect the original model.

    Args:
        model: A ``Sequential`` model.
        split_index: Cut position; must satisfy ``0 < split_index < len(model)``.

    Raises:
        SplitError: If the model is not Sequential or the index is out of
            range (both halves must be non-empty).
    """
    if not isinstance(model, Sequential):
        raise SplitError(f"only Sequential models can be split, got {type(model)!r}")
    if not 0 < split_index < len(model):
        raise SplitError(
            f"split index must be in (0, {len(model)}), got {split_index}"
        )
    bottom = Sequential(model.layers[:split_index]).clone()
    top = Sequential(model.layers[split_index:]).clone()
    return SplitModel(bottom=bottom, top=top, split_index=split_index)
