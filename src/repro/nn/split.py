"""Model splitting: the defining operation of split federated learning.

A full model ``w`` is carved at the *split layer* into a bottom submodel
``w_b`` (trained on workers) and a top submodel ``w_p`` (trained on the
parameter server).  The bottom's output at the split layer is the *feature*
(smashed data) exchanged with the server; the gradient flowing back into
the split layer is what the server dispatches to workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SplitError
from repro.nn.module import Module, Sequential


@dataclass
class SplitModel:
    """The two halves of a split model.

    Attributes:
        bottom: Worker-side submodel (input layer up to, excluding, the
            split position).
        top: Server-side submodel (split position to the output layer).
        split_index: Index in the original ``Sequential`` where the cut was
            made.
    """

    bottom: Sequential
    top: Sequential
    split_index: int

    def full_forward(self, inputs):
        """Run the two halves back to back (used for evaluation)."""
        return self.top.forward(self.bottom.forward(inputs))


def split_model(model: Module, split_index: int) -> SplitModel:
    """Split a :class:`Sequential` model at ``split_index``.

    Layers ``[0, split_index)`` become the bottom model and layers
    ``[split_index, len(model))`` become the top model.  The returned halves
    are deep copies, so mutating them does not affect the original model.

    Args:
        model: A ``Sequential`` model.
        split_index: Cut position; must satisfy ``0 < split_index < len(model)``.

    Raises:
        SplitError: If the model is not Sequential or the index is out of
            range (both halves must be non-empty).
    """
    if not isinstance(model, Sequential):
        raise SplitError(f"only Sequential models can be split, got {type(model)!r}")
    if not 0 < split_index < len(model):
        raise SplitError(
            f"split index must be in (0, {len(model)}), got {split_index}"
        )
    bottom = Sequential(model.layers[:split_index]).clone()
    top = Sequential(model.layers[split_index:]).clone()
    return SplitModel(bottom=bottom, top=top, split_index=split_index)


def candidate_split_depths(bottom: Sequential) -> list[int]:
    """Valid per-worker cut depths *within* an already-split bottom model.

    A depth ``d`` means a worker holds ``bottom.layers[:d]`` and the server
    completes the remaining ``bottom.layers[d:]`` before the shared top.
    Cuts directly after a weighted layer swallow any parameter-free layers
    that follow (activations, pooling, flatten), matching the convention of
    :func:`repro.nn.models.default_split_layer`; the full bottom depth (the
    global cut in use today) is always the last candidate.
    """
    depths = []
    for index, layer in enumerate(bottom.layers):
        if layer.parameters():
            depth = index + 1
            while depth < len(bottom) and not bottom.layers[depth].parameters():
                depth += 1
            depths.append(depth)
    depths.append(len(bottom))
    return sorted(set(depths))


def carve_prefix(bottom: Sequential, depth: int) -> Sequential:
    """Deep copy of the worker-side prefix ``bottom.layers[:depth]``.

    Parameter names keep their global positions (``layer0`` ..
    ``layer{depth-1}``), so a prefix state dict is a subset of the full
    bottom state dict.
    """
    if not 0 < depth <= len(bottom):
        raise SplitError(
            f"prefix depth must be in (0, {len(bottom)}], got {depth}"
        )
    return Sequential(bottom.layers[:depth]).clone()


def carve_bridge(bottom: Sequential, depth: int) -> Sequential:
    """Deep copy of the server-side bridge ``bottom.layers[depth:]``.

    The bridge completes a depth-``depth`` worker's forward pass up to the
    shared split layer.  Its parameters are renumbered from ``layer0``; use
    :func:`shift_state_keys` with offset ``depth`` to map them back to
    global bottom positions.
    """
    if not 0 < depth <= len(bottom):
        raise SplitError(
            f"bridge depth must be in (0, {len(bottom)}], got {depth}"
        )
    return Sequential(bottom.layers[depth:]).clone()


def shift_state_keys(state: dict, offset: int) -> dict:
    """Renumber ``layer{i}.*`` keys of a state dict by ``offset`` positions.

    Maps a bridge's local parameter names (``layer0.*`` for the layer at
    global position ``depth``) onto the global bottom naming, letting a
    prefix state plus a shifted bridge state reassemble one full bottom
    state dict.
    """
    shifted = {}
    for key, value in state.items():
        head, _, rest = key.partition(".")
        if not head.startswith("layer"):
            raise SplitError(f"unexpected state key {key!r}")
        index = int(head[len("layer"):]) + offset
        shifted[f"layer{index}.{rest}"] = value
    return shifted
