"""A from-scratch NumPy neural-network library.

This subpackage replaces PyTorch in the reproduction.  It provides layer
modules with explicit ``forward``/``backward`` passes, losses, SGD
optimizers with learning-rate schedules, parameter (de)serialisation used
for federated aggregation, the paper's model zoo (CNN-H, CNN-S, AlexNet-S,
VGG-S) and the model-splitting utility at the heart of split federated
learning.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module, Sequential
from repro.nn.layers import (
    Linear,
    Conv2d,
    Conv1d,
    MaxPool2d,
    MaxPool1d,
    AvgPool2d,
    ReLU,
    Tanh,
    Sigmoid,
    Flatten,
    Dropout,
    BatchNorm1d,
    BatchNorm2d,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss, softmax, one_hot
from repro.nn.optim import SGD, ExponentialLR, StepLR
from repro.nn.serialization import (
    get_flat_params,
    set_flat_params,
    average_state_dicts,
    state_dict_distance,
    num_parameters,
    model_size_bytes,
)
from repro.nn.split import split_model, SplitModel
from repro.nn.models import (
    build_model,
    build_cnn_h,
    build_cnn_s,
    build_alexnet_s,
    build_vgg_s,
    build_mlp,
    default_split_layer,
    MODEL_REGISTRY,
)

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "Conv1d",
    "MaxPool2d",
    "MaxPool1d",
    "AvgPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "BatchNorm1d",
    "BatchNorm2d",
    "CrossEntropyLoss",
    "MSELoss",
    "softmax",
    "one_hot",
    "SGD",
    "ExponentialLR",
    "StepLR",
    "get_flat_params",
    "set_flat_params",
    "average_state_dicts",
    "state_dict_distance",
    "num_parameters",
    "model_size_bytes",
    "split_model",
    "SplitModel",
    "build_model",
    "build_cnn_h",
    "build_cnn_s",
    "build_alexnet_s",
    "build_vgg_s",
    "build_mlp",
    "default_split_layer",
    "MODEL_REGISTRY",
]
