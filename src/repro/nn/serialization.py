"""Parameter (de)serialisation used by federated aggregation and traffic accounting."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

#: Bytes per parameter when models/features travel over the simulated network.
#: The paper quotes 32-bit model/feature sizes (VGG16 = 321 MB), so traffic is
#: accounted in float32 even though computation is float64.
BYTES_PER_PARAMETER = 4


def get_flat_params(module: Module) -> np.ndarray:
    """Concatenate every parameter of ``module`` into a single 1-D vector."""
    params = module.parameters()
    if not params:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([p.data.reshape(-1) for p in params])


def set_flat_params(module: Module, flat: np.ndarray) -> None:
    """Write a flat vector produced by :func:`get_flat_params` back into ``module``."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = module.num_parameters()
    if flat.size != expected:
        raise ValueError(
            f"flat vector has {flat.size} elements, module expects {expected}"
        )
    offset = 0
    for param in module.parameters():
        count = param.size
        param.data = flat[offset:offset + count].reshape(param.data.shape).copy()
        offset += count


def average_state_dicts(
    states: list[dict[str, np.ndarray]],
    weights: list[float] | None = None,
) -> dict[str, np.ndarray]:
    """Weighted average of state dicts (Eq. 4 / Eq. 17 of the paper).

    Args:
        states: State dicts with identical key sets and shapes.
        weights: Per-state weights; uniform when omitted.  Weights are
            normalised internally so they only need to be non-negative.

    Returns:
        A new state dict holding the weighted average.
    """
    if not states:
        raise ValueError("cannot average an empty list of state dicts")
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states must have the same length")
    weight_array = np.asarray(weights, dtype=np.float64)
    if np.any(weight_array < 0):
        raise ValueError("weights must be non-negative")
    total = weight_array.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    weight_array = weight_array / total

    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise KeyError("state dicts have mismatched keys")

    averaged: dict[str, np.ndarray] = {}
    for key in states[0]:
        stacked = np.stack([state[key] for state in states], axis=0)
        averaged[key] = np.tensordot(weight_array, stacked, axes=1)
    return averaged


def state_dict_distance(
    first: dict[str, np.ndarray], second: dict[str, np.ndarray]
) -> float:
    """Euclidean distance between two state dicts (used in tests and PyramidFL)."""
    if set(first) != set(second):
        raise KeyError("state dicts have mismatched keys")
    total = 0.0
    for key, value in first.items():
        total += float(np.sum((value - second[key]) ** 2))
    return float(np.sqrt(total))


def num_parameters(module: Module) -> int:
    """Total number of trainable scalars in ``module``."""
    return module.num_parameters()


def model_size_bytes(module: Module) -> int:
    """Size of the module on the wire, assuming float32 serialisation."""
    return module.num_parameters() * BYTES_PER_PARAMETER


def _iter_leaf_layers(module: Module, prefix: str = ""):
    """Yield ``(path, layer)`` for every non-container layer in ``module``."""
    from repro.nn.module import Sequential

    if isinstance(module, Sequential):
        for index, layer in enumerate(module.layers):
            child_prefix = f"{prefix}layer{index}" if not prefix else f"{prefix}.layer{index}"
            yield from _iter_leaf_layers(layer, child_prefix)
    else:
        yield prefix, module


def module_extra_state(module: Module) -> dict:
    """Non-parameter mutable layer state, keyed by layer path.

    ``Module.state_dict`` captures trainable parameters only; layers that
    carry additional state (dropout RNG streams, batch-norm running
    statistics, any plugin layer overriding ``Module.extra_state``) must
    also survive a checkpoint round trip for a resumed run to continue
    bit-exactly.
    """
    state: dict = {}
    for path, layer in _iter_leaf_layers(module):
        layer_state = layer.extra_state()
        if layer_state:
            state[path] = layer_state
    return state


def load_module_extra_state(module: Module, state: dict) -> None:
    """Restore layer state captured by :func:`module_extra_state`."""
    layers = dict(_iter_leaf_layers(module))
    for path, payload in state.items():
        if path not in layers:
            raise KeyError(f"checkpoint references unknown layer {path!r}")
        layers[path].load_extra_state(payload)
