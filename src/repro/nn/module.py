"""Module and Sequential containers.

Every layer derives from :class:`Module` and implements ``forward`` and
``backward``.  ``backward`` receives the gradient of the loss with respect
to the layer output and must (a) accumulate gradients into its parameters
and (b) return the gradient with respect to its input.  This explicit
chain-rule style is all split federated learning needs: the split layer's
input gradient is exactly what the parameter server dispatches back to the
workers.
"""

from __future__ import annotations

import copy
from collections.abc import Iterator

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class for all neural-network layers and containers."""

    def __init__(self) -> None:
        self.training = True

    # -- computation ----------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the layer output and cache whatever backward needs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- parameters ------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """Return the list of trainable parameters (possibly empty)."""
        return []

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """Return ``(name, parameter)`` pairs; names are stable across calls."""
        named = []
        for index, param in enumerate(self.parameters()):
            name = param.name or f"param{index}"
            full = f"{prefix}.{name}" if prefix else name
            named.append((full, param))
        return named

    def zero_grad(self) -> None:
        """Zero the gradient buffers of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- train / eval ----------------------------------------------------
    def train(self) -> "Module":
        """Put the module in training mode (affects Dropout/BatchNorm)."""
        self.training = True
        return self

    def eval(self) -> "Module":
        """Put the module in evaluation mode."""
        self.training = False
        return self

    # -- state -----------------------------------------------------------
    def extra_state(self) -> dict:
        """Non-parameter mutable state for bit-exact checkpointing.

        Layers that carry state outside their parameters -- RNG streams,
        running statistics -- override this (and :meth:`load_extra_state`)
        so checkpoint/resume reproduces their behaviour exactly.  The
        default is stateless.
        """
        return {}

    def load_extra_state(self, state: dict) -> None:
        """Restore state captured by :meth:`extra_state`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} does not accept extra state, "
                f"got keys {sorted(state)}"
            )

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a deep copy of all parameter arrays keyed by name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from a state dict produced by ``state_dict``."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.copy()

    def clone(self) -> "Module":
        """Return a structurally identical deep copy of this module."""
        return copy.deepcopy(self)

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(param.size for param in self.parameters())


class Sequential(Module):
    """An ordered container of modules applied one after another.

    Supports slicing (``model[:k]`` / ``model[k:]``), which is how split
    federated learning carves a full model into bottom and top submodels.
    Slicing shares the underlying layer objects; use :meth:`clone` for an
    independent copy.
    """

    def __init__(self, layers: list[Module] | None = None) -> None:
        super().__init__()
        self.layers: list[Module] = list(layers) if layers else []

    # -- container protocol ----------------------------------------------
    def append(self, layer: Module) -> "Sequential":
        """Append a layer and return self for chaining."""
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __getitem__(self, index: int | slice) -> "Module | Sequential":
        if isinstance(index, slice):
            return Sequential(self.layers[index])
        return self.layers[index]

    # -- computation ----------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = inputs
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- parameters ------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        named: list[tuple[str, Parameter]] = []
        for index, layer in enumerate(self.layers):
            layer_prefix = f"{prefix}.layer{index}" if prefix else f"layer{index}"
            named.extend(layer.named_parameters(layer_prefix))
        return named

    def train(self) -> "Sequential":
        super().train()
        for layer in self.layers:
            layer.train()
        return self

    def eval(self) -> "Sequential":
        super().eval()
        for layer in self.layers:
            layer.eval()
        return self
