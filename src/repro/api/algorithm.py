"""The unified algorithm interface.

Every trainable algorithm in the repository -- the split engine behind
MergeSFL and the SFL baselines, the FL engine behind FedAvg/PyramidFL, and
any out-of-tree plugin -- implements :class:`Algorithm`: incremental
execution via :meth:`Algorithm.step_round`, batch execution via
:meth:`Algorithm.run`, and full state capture via
:meth:`Algorithm.state_dict` / :meth:`Algorithm.load_state_dict` so a
:class:`repro.api.session.Session` can checkpoint and resume it.

Facade classes that own an engine (``MergeSFL``, ``SplitFed``, ``FedAvg``,
...) derive from :class:`EngineBackedAlgorithm`, which forwards the whole
contract to the engine.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.metrics.history import History, RoundRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.config import ExperimentConfig
    from repro.nn.module import Sequential


class Algorithm(abc.ABC):
    """Abstract base over every training algorithm.

    Implementations expose two attributes in addition to the methods below:

    * ``config`` -- the :class:`~repro.config.ExperimentConfig` driving the
      run (used for the default round count of :meth:`run`).
    * ``history`` -- the :class:`~repro.metrics.history.History` accumulating
      one :class:`~repro.metrics.history.RoundRecord` per executed round.
    """

    config: "ExperimentConfig"
    history: History

    @abc.abstractmethod
    def step_round(self) -> RoundRecord:
        """Execute exactly one communication round and return its record.

        Round indexing is monotonic: each call continues where the previous
        one stopped, also across interleaved :meth:`run` calls and
        ``state_dict`` round trips.
        """

    @abc.abstractmethod
    def global_model(self) -> "Sequential":
        """A copy of the current global model, in evaluation mode."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """All mutable state needed to resume training after a rebuild.

        The result contains only JSON-encodable scalars, lists, string-keyed
        dicts and numpy arrays (see :mod:`repro.api.checkpoint`).
        """

    @abc.abstractmethod
    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`.

        The algorithm must have been built from the same configuration; only
        the mutable training state is restored, not the component wiring.
        """

    @property
    def rounds_completed(self) -> int:
        """Number of communication rounds executed so far."""
        return len(self.history)

    def drain(self) -> None:
        """Wait until no asynchronously dispatched round work is in flight.

        Called by :class:`~repro.api.session.Session` before checkpointing
        so a pipelined round (see :mod:`repro.parallel.pipeline`) can never
        race the state capture.  The default is a no-op; engines that own
        an :class:`~repro.parallel.base.Executor` forward the call to it.
        """

    def close(self) -> None:
        """Release execution resources (process pools, ...); idempotent.

        The default is a no-op; engines that own an
        :class:`~repro.parallel.base.Executor` forward the call to it.
        """

    def run(self, num_rounds: int | None = None) -> History:
        """Execute ``num_rounds`` additional rounds (default: ``config.num_rounds``).

        Unlike the historical behaviour, repeated calls do not restart at
        round zero -- they extend the same run, so ``run(2)`` followed by
        ``run(3)`` equals one ``run(5)``.
        """
        rounds = num_rounds if num_rounds is not None else self.config.num_rounds
        if rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step_round()
        return self.history


class EngineBackedAlgorithm(Algorithm):
    """Base for facades that delegate the whole contract to ``self.engine``."""

    engine: Algorithm

    @property
    def config(self) -> "ExperimentConfig":
        return self.engine.config

    @property
    def history(self) -> History:
        return self.engine.history

    def step_round(self) -> RoundRecord:
        return self.engine.step_round()

    def run(self, num_rounds: int | None = None) -> History:
        return self.engine.run(num_rounds)

    def global_model(self) -> "Sequential":
        return self.engine.global_model()

    def state_dict(self) -> dict:
        return self.engine.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.engine.load_state_dict(state)

    def drain(self) -> None:
        self.engine.drain()

    def close(self) -> None:
        self.engine.close()
