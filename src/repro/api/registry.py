"""Name-based plugin registries.

Every extensible axis of the system -- algorithms, datasets, models and
control policies -- is backed by a :class:`Registry`.  Built-in components
register themselves with the decorators below in the module that defines
them (e.g. ``@register_algorithm("mergesfl")`` in
:mod:`repro.core.mergesfl`); third-party code registers additional entries
the same way, without editing any core module:

    from repro.api import register_algorithm

    @register_algorithm("my_sfl", description="my out-of-tree variant")
    def build_my_sfl(components):
        return MySFL(...)

Algorithm entries are factories ``(components) -> Algorithm``, dataset
entries are makers ``(train_samples, test_samples, seed) -> TrainTestSplit``,
model entries are builders returning a :class:`~repro.nn.module.Sequential`
(see :func:`repro.api.components.build_model_for` for the keyword contract
selected by the ``input_kind`` metadata), and policy entries are factories
``(config, **overrides) -> policy``.

The registries populate lazily: the first lookup imports
:mod:`repro.api.builtins`, which pulls in every module carrying built-in
registrations.  Registration itself never triggers population, so plugin
modules may register entries before, during or after that import.
"""

from __future__ import annotations

import difflib
from collections.abc import Callable, Iterator

from repro.exceptions import ConfigurationError


class Registry:
    """A mapping from names to pluggable components, with metadata.

    Args:
        kind: Human-readable component kind used in error messages
            (``"algorithm"``, ``"dataset"``, ...).
        populate: Optional zero-argument callable invoked once before the
            first lookup, giving built-in entries a chance to register.
    """

    def __init__(self, kind: str, populate: Callable[[], None] | None = None) -> None:
        self.kind = kind
        self._entries: dict[str, object] = {}
        self._metadata: dict[str, dict] = {}
        self._populate = populate
        self._populated = populate is None
        self._populating = False
        #: Names whose current entry was registered with ``override=True``;
        #: only these may shadow a built-in registered later by population.
        self._overridden: set[str] = set()
        #: Maps names registered by population itself to the attempt number
        #: that registered them.  Re-registering a name from an *earlier*
        #: attempt (left behind by a failed population) is idempotent; a
        #: duplicate within the *same* attempt (two built-in modules
        #: claiming one name) is still an error.
        self._from_population: dict[str, int] = {}
        self._attempt = 0

    # -- registration --------------------------------------------------------
    def register(self, name: str, obj: object | None = None, *,
                 override: bool = False, **metadata):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Args:
            name: Registry key.
            obj: The component; when omitted a decorator is returned.
            override: Allow replacing an existing entry instead of raising.
            **metadata: Free-form metadata stored alongside the entry
                (e.g. ``input_kind`` / ``split_after_weighted`` for models).

        Raises:
            ConfigurationError: On an empty name or a duplicate registration
                without ``override=True``.
        """
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )

        def _register(target):
            populating = self._populating or _LOADING_BUILTINS
            # The built-ins import populates all registries at once, so its
            # attempts are counted globally; a registry-local populate hook
            # counts its own attempts.
            attempt = _BUILTINS_ATTEMPT if _LOADING_BUILTINS else self._attempt
            if name in self._entries:
                # While built-ins are being (re)loaded, an entry registered
                # earlier keeps precedence -- but only if it claimed the
                # name deliberately (override=True).  An accidental
                # collision must not silently shadow a built-in, and an
                # entry a previously failed population left behind is
                # simply re-registered.
                if populating:
                    if name in self._overridden:
                        return target
                    if name not in self._from_population:
                        raise ConfigurationError(
                            f"{self.kind} {name!r} was registered before "
                            f"the built-ins loaded and collides with a "
                            f"built-in name; pass override=True to replace it"
                        )
                    if self._from_population[name] == attempt:
                        raise ConfigurationError(
                            f"{self.kind} {name!r} is registered twice by "
                            f"the built-in modules"
                        )
                elif not override:
                    raise ConfigurationError(
                        f"{self.kind} {name!r} is already registered; "
                        f"pass override=True to replace it"
                    )
            if override:
                self._overridden.add(name)
            else:
                self._overridden.discard(name)
            if populating:
                self._from_population[name] = attempt
            self._entries[name] = target
            self._metadata[name] = dict(metadata)
            return target

        if obj is None:
            return _register
        return _register(obj)

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests tearing down plugins)."""
        self._ensure()
        if name not in self._entries:
            raise ConfigurationError(self.unknown_message(name))
        del self._entries[name]
        del self._metadata[name]
        self._overridden.discard(name)
        self._from_population.pop(name, None)

    # -- lookup --------------------------------------------------------------
    def get(self, name: str):
        """Return the entry registered under ``name``.

        Raises:
            ConfigurationError: For unknown names, with the known names and
                a closest-match suggestion.
        """
        self._ensure()
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(self.unknown_message(name)) from None

    def metadata(self, name: str) -> dict:
        """Metadata captured at registration time (a copy)."""
        self.get(name)
        return dict(self._metadata[name])

    def names(self) -> list[str]:
        """Sorted names of every registered entry."""
        self._ensure()
        return sorted(self._entries)

    def unknown_message(self, name: str) -> str:
        """Error message for an unknown name, with a did-you-mean hint."""
        known = self.names()
        closest = difflib.get_close_matches(str(name), known, n=1)
        hint = f"; did you mean {closest[0]!r}?" if closest else ""
        listing = ", ".join(known) if known else "<none registered>"
        return (
            f"unknown {self.kind} {name!r}{hint} "
            f"(registered {self.kind} names: {listing})"
        )

    def __contains__(self, name: str) -> bool:
        self._ensure()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"

    # -- internals -----------------------------------------------------------
    def _ensure(self) -> None:
        """Run the populate hook once, before the first lookup.

        The populated flag is only committed when the hook succeeds, so a
        failed population (e.g. an import error) is retried on the next
        lookup instead of leaving the registry permanently half-filled.
        """
        if self._populated or self._populating:
            return
        self._populating = True
        self._attempt += 1
        try:
            self._populate()
            self._populated = True
        finally:
            self._populating = False


#: True while :func:`_load_builtins` is importing the built-in modules; the
#: shared import populates all four registries at once, so duplicate checks
#: must relax for every registry during that window, not just the one whose
#: lookup triggered it.
_LOADING_BUILTINS = False

#: Counts built-ins import attempts; see ``Registry._from_population``.
_BUILTINS_ATTEMPT = 0


def _load_builtins() -> None:
    """Import every module that registers built-in components."""
    global _LOADING_BUILTINS, _BUILTINS_ATTEMPT
    if _LOADING_BUILTINS:
        return
    _LOADING_BUILTINS = True
    _BUILTINS_ATTEMPT += 1
    try:
        import repro.api.builtins  # noqa: F401  (import is the side effect)
    finally:
        _LOADING_BUILTINS = False


#: Experiment algorithms: factories ``(components) -> Algorithm``.
ALGORITHMS = Registry("algorithm", populate=_load_builtins)
#: Dataset analogues: makers ``(train_samples, test_samples, seed) -> TrainTestSplit``.
DATASETS = Registry("dataset", populate=_load_builtins)
#: Model builders returning a ``Sequential`` (see ``build_model_for``).
MODELS = Registry("model", populate=_load_builtins)
#: Control policies / selection strategies: factories ``(config, **kw) -> policy``.
POLICIES = Registry("policy", populate=_load_builtins)
#: Execution backends: factories ``(config) -> Executor`` (see ``repro.parallel``).
EXECUTORS = Registry("executor", populate=_load_builtins)
#: Round schedulers: factories ``(config) -> PipelineScheduler``
#: (see ``repro.parallel.pipeline``).
PIPELINES = Registry("pipeline", populate=_load_builtins)
#: Inter-process feature transports: factories ``(config) -> Transport``
#: (see ``repro.parallel.transport``).
TRANSPORTS = Registry("transport", populate=_load_builtins)
#: Payload codecs for the feature transport: :class:`~repro.parallel.codec.Codec`
#: subclasses keyed by name (see ``repro.parallel.codec``).
CODECS = Registry("codec", populate=_load_builtins)
#: Split-point policies: per-worker cut-depth selectors
#: (see ``repro.splitpoint``).
SPLIT_POLICIES = Registry("split policy", populate=_load_builtins)
#: Worker-selection solvers: :class:`~repro.selection.solvers.SelectionSolver`
#: subclasses keyed by name (see ``repro.selection``).
SELECTION_SOLVERS = Registry("selection solver", populate=_load_builtins)

register_algorithm = ALGORITHMS.register
register_dataset = DATASETS.register
register_model = MODELS.register
register_policy = POLICIES.register
register_executor = EXECUTORS.register
register_pipeline = PIPELINES.register
register_transport = TRANSPORTS.register
register_codec = CODECS.register
register_split_policy = SPLIT_POLICIES.register
register_selection_solver = SELECTION_SOLVERS.register
