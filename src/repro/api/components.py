"""Configuration-to-components assembly and registry-driven construction.

:func:`build_components` materialises everything an algorithm needs from an
:class:`~repro.config.ExperimentConfig` -- dataset, partition, workers,
model, split, simulated cluster and bandwidth budget -- and
:func:`build_algorithm` instantiates the configured algorithm through the
:data:`~repro.api.registry.ALGORITHMS` registry.  There is no hard-coded
algorithm/dataset/model dispatch here: adding a component means registering
it (see :mod:`repro.api.registry`), not editing this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.elastic import ElasticController
    from repro.parallel.base import Executor
    from repro.selection.solvers import SelectionSolver

from repro.api.registry import ALGORITHMS, MODELS
from repro.config import ExperimentConfig
from repro.core.worker import SplitWorker
from repro.data.dataset import TrainTestSplit
from repro.data.partition import partition_dataset
from repro.data.synthetic import make_dataset
from repro.exceptions import ConfigurationError
from repro.nn.models import build_model, default_split_layer, has_default_split
from repro.nn.module import Sequential
from repro.nn.split import SplitModel, split_model
from repro.parallel import build_executor
from repro.population.cache import DeltaCache
from repro.population.materializer import Materializer
from repro.population.pool import EagerWorkerPool, LazyWorkerPool, WorkerPool
from repro.population.registry import (
    PartitionShards,
    SampledShards,
    WorkerRegistry,
)
from repro.simulation.cluster import Cluster, LazyCluster, build_cluster
from repro.simulation.traffic import feature_bytes

#: Fraction of the "everyone at full batch" ingress load used as the default
#: bandwidth budget, so worker selection is a real constraint (see DESIGN.md).
DEFAULT_BUDGET_UTILISATION = 0.6


@dataclass
class ExperimentComponents:
    """Everything needed to instantiate an algorithm.

    ``split`` is ``None`` for models that declare no split point
    (no ``split_after_weighted`` registry metadata); such models can only
    run full-model (FL) algorithms.  ``executor`` is the execution backend
    (built from ``config.executor`` through the
    :data:`~repro.api.registry.EXECUTORS` registry) that the engines use
    for per-worker compute.
    """

    config: ExperimentConfig
    data: TrainTestSplit
    model: Sequential
    split: SplitModel | None
    workers: list[SplitWorker]
    cluster: "Cluster | LazyCluster"
    bandwidth_budget: float
    #: ``None`` (e.g. hand-wired component sets) means the engines fall
    #: back to their default serial executor.
    executor: "Executor | None" = None
    #: The population abstraction the engines train against.  ``None``
    #: (hand-wired component sets) means :meth:`worker_pool` wraps the
    #: eager ``workers`` list on first use; ``config.population="lazy"``
    #: stores a :class:`~repro.population.pool.LazyWorkerPool` here and
    #: leaves ``workers`` empty.
    pool: "WorkerPool | None" = None
    #: Round-elasticity controller shared by whichever engine the algorithm
    #: builds.  ``None`` means :meth:`elastic_controller` builds one from
    #: the configuration on first use (itself ``None`` when
    #: ``config.elastic`` is off, which keeps rounds synchronous).
    elastic: "ElasticController | None" = None
    #: Worker-selection solver shared by whichever policy the algorithm
    #: builds.  ``None`` means :meth:`selection_solver` resolves
    #: ``config.selector`` from the registry on first use.
    selection: "SelectionSolver | None" = None

    def worker_pool(self) -> "WorkerPool":
        """The population pool, wrapping the eager worker list if needed."""
        if self.pool is None:
            self.pool = EagerWorkerPool(self.workers)
        return self.pool

    def elastic_controller(self) -> "ElasticController | None":
        """The elasticity controller, built from the config on first use."""
        if self.elastic is None:
            from repro.core.elastic import build_elastic_controller

            self.elastic = build_elastic_controller(self.config, self.cluster)
        return self.elastic

    def selection_solver(self) -> "SelectionSolver":
        """The worker-selection solver, resolved from ``config.selector``."""
        if self.selection is None:
            from repro.selection.solvers import build_selection_solver

            self.selection = build_selection_solver(self.config)
        return self.selection


def build_model_for(config: ExperimentConfig, data: TrainTestSplit) -> Sequential:
    """Build the configured model with dimensions matching the dataset.

    The keyword contract is selected by the model's ``input_kind`` metadata
    (declared at registration, see :mod:`repro.api.registry`):

    * ``"vector"`` -- builder receives ``input_dim`` (the flattened size).
    * ``"sequence"`` -- expects ``(channels, length)`` data; builder receives
      ``in_channels``, ``sequence_length`` and ``width``.
    * ``"image"`` -- expects square ``(channels, size, size)`` data; builder
      receives ``in_channels``, ``image_size`` and ``width``.
    * ``"raw"`` (default) -- builder receives ``feature_shape`` verbatim,
      for plugins that handle their own shape logic.

    All builders additionally receive ``num_classes`` and ``seed``.
    """
    shape = data.feature_shape
    input_kind = (
        MODELS.metadata(config.model).get("input_kind", "raw")
        if config.model in MODELS else "raw"
    )
    kwargs: dict = {"num_classes": data.num_classes, "seed": config.seed}
    if input_kind == "vector":
        kwargs["input_dim"] = int(np.prod(shape))
    elif input_kind == "sequence":
        if len(shape) != 2:
            raise ConfigurationError(
                f"model {config.model!r} expects (channels, length) data, got {shape}"
            )
        kwargs["in_channels"] = shape[0]
        kwargs["sequence_length"] = shape[1]
        kwargs["width"] = config.model_width
    elif input_kind == "image":
        if len(shape) != 3 or shape[1] != shape[2]:
            raise ConfigurationError(
                f"model {config.model!r} expects square image data, got {shape}"
            )
        kwargs["in_channels"] = shape[0]
        kwargs["image_size"] = shape[1]
        kwargs["width"] = config.model_width
    elif input_kind == "raw":
        kwargs["feature_shape"] = shape
    else:
        raise ConfigurationError(
            f"model {config.model!r} declares unknown input_kind {input_kind!r}"
        )
    # build_model honours legacy MODEL_REGISTRY dict mutations as well as
    # the registry, keeping both extension paths effective here.
    return build_model(config.model, **kwargs)


def _default_bandwidth_budget(
    config: ExperimentConfig, split: SplitModel, data: TrainTestSplit
) -> float:
    """Ingress budget B^h that makes the selection constraint bite.

    When ``extras['auto_budget']`` is true (the default), the budget is set
    to ``DEFAULT_BUDGET_UTILISATION`` of the load generated by every worker
    sending a full-size batch, so roughly that fraction of the fleet can be
    selected at full batch.  Setting ``auto_budget`` to ``False`` uses the
    configured ``bandwidth_budget_mbps`` verbatim.
    """
    if not config.extras.get("auto_budget", True):
        return config.bandwidth_budget_mbps
    probe = split.bottom.clone()
    sample = probe.forward(np.zeros((1, *data.feature_shape), dtype=np.float64))
    per_sample_mbits = 2 * feature_bytes(tuple(sample.shape[1:]), 1) * 8.0 / 1e6
    return (
        DEFAULT_BUDGET_UTILISATION
        * config.num_workers
        * config.max_batch_size
        * per_sample_mbits
    )


def _build_lazy_population(
    config: ExperimentConfig, data: TrainTestSplit
) -> LazyWorkerPool:
    """Registry + materializer + delta cache for ``population="lazy"``.

    ``extras['population_sharding']`` picks the shard source: ``"partition"``
    (default) reuses :func:`partition_dataset` verbatim, which keeps the lazy
    path bit-exact with eager construction; ``"sampled"`` derives each shard
    lazily from a per-worker RNG stream, the O(1)-per-registration mode for
    million-worker registries (shard size via
    ``extras['population_samples_per_worker']``).
    """
    sharding = config.extras.get("population_sharding", "partition")
    if sharding == "partition":
        source = PartitionShards(
            partition_dataset(
                data.train, config.num_workers, config.non_iid_level,
                seed=config.seed,
            )
        )
    elif sharding == "sampled":
        default_samples = min(
            len(data.train), max(16, len(data.train) // config.num_workers)
        )
        source = SampledShards(
            train_size=len(data.train),
            samples_per_worker=int(
                config.extras.get("population_samples_per_worker", default_samples)
            ),
            seed=config.seed,
        )
    else:
        raise ConfigurationError(
            f"extras['population_sharding'] must be 'partition' or 'sampled', "
            f"got {sharding!r}"
        )
    registry = WorkerRegistry(
        num_workers=config.num_workers,
        num_classes=data.num_classes,
        targets=data.train.targets,
        source=source,
        shard_size=config.population_shard_size,
    )
    materializer = Materializer(
        registry=registry,
        train_dataset=data.train,
        num_classes=data.num_classes,
        seed=config.seed,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        max_grad_norm=config.max_grad_norm,
    )
    cache = DeltaCache(config.population_cache) if config.population_cache else None
    return LazyWorkerPool(
        registry=registry,
        materializer=materializer,
        cache=cache,
        candidates_per_round=config.population_candidates,
        seed=config.seed,
    )


def resolve_split_layer(config: ExperimentConfig, model: Sequential) -> int:
    """The global cut layer, validated against the actual model depth.

    ``extras['split_index']`` overrides the model's registered default cut;
    out-of-range overrides -- and policy depth bounds
    (``split_depth_min``/``split_depth_max``) that exceed the model --
    are rejected here with a :class:`ConfigurationError` at build time,
    before any round runs, instead of surfacing mid-run as a
    :class:`~repro.exceptions.SplitError`.
    """
    depth = len(model)
    index = config.extras.get("split_index")
    if index is None:
        index = default_split_layer(config.model, model)
    elif not 0 < index < depth:
        raise ConfigurationError(
            f"extras['split_index'] ({index}) must be in (0, {depth}) for "
            f"model {config.model!r} ({depth} layers): the cut must leave "
            f"at least one layer on each side"
        )
    for key in ("split_depth_min", "split_depth_max"):
        bound = config.extras.get(key)
        if bound is not None and bound > depth:
            raise ConfigurationError(
                f"extras[{key!r}] ({bound}) exceeds the depth of model "
                f"{config.model!r} ({depth} layers)"
            )
    return index


def build_components(config: ExperimentConfig) -> ExperimentComponents:
    """Materialise dataset, partition, model, split, cluster and workers."""
    # make_dataset honours legacy DATASET_REGISTRY dict mutations as well
    # as the registry, keeping both extension paths effective here.
    data = make_dataset(
        config.dataset,
        train_samples=config.train_samples,
        test_samples=config.test_samples,
        seed=config.seed,
    )
    if config.population == "lazy":
        pool = _build_lazy_population(config, data)
        workers: list[SplitWorker] = []
        cluster: Cluster | LazyCluster = LazyCluster(
            num_workers=config.num_workers,
            bandwidth_budget_mbps=config.bandwidth_budget_mbps,
            seed=config.seed,
            mode_change_interval=config.mode_change_interval,
            max_live_devices=int(config.extras.get("population_live_devices", 0)),
        )
    else:
        pool = None
        shards = partition_dataset(
            data.train, config.num_workers, config.non_iid_level, seed=config.seed
        )
        workers = [
            SplitWorker(
                worker_id=worker_id,
                dataset=data.train.subset(shard),
                num_classes=data.num_classes,
                seed=config.seed + 1000 + worker_id,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
                max_grad_norm=config.max_grad_norm,
            )
            for worker_id, shard in enumerate(shards)
        ]
        cluster = build_cluster(
            num_workers=config.num_workers,
            bandwidth_budget_mbps=config.bandwidth_budget_mbps,
            seed=config.seed,
            mode_change_interval=config.mode_change_interval,
        )
    model = build_model_for(config, data)
    if has_default_split(config.model):
        split = split_model(model, resolve_split_layer(config, model))
    else:
        split = None
    # Without a split there is no feature traffic to budget against; the
    # configured ingress budget is used verbatim.
    if split is not None:
        budget = _default_bandwidth_budget(config, split, data)
    else:
        budget = config.bandwidth_budget_mbps
    return ExperimentComponents(
        config=config,
        data=data,
        model=model,
        split=split,
        workers=workers,
        cluster=cluster,
        bandwidth_budget=budget,
        executor=build_executor(config),
        pool=pool,
    )


def build_algorithm(components: ExperimentComponents):
    """Instantiate the algorithm named in the configuration via the registry."""
    factory = ALGORITHMS.get(components.config.algorithm)
    return factory(components)
