"""JSON-safe (de)serialisation of experiment state.

Checkpoints written by :class:`repro.api.session.Session` are plain JSON
files.  Numpy arrays are encoded as base64 of their raw bytes (plus dtype
and shape), which round-trips bit-exactly -- a restored run continues with
exactly the weights, RNG streams and accounting it was saved with.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path

import numpy as np

#: Marker key identifying an encoded numpy array.
ARRAY_KEY = "__ndarray__"


def encode_state(value):
    """Recursively convert ``value`` into JSON-encodable primitives.

    Supports None, bools, ints, floats, strings, numpy scalars and arrays,
    lists/tuples and string-keyed dicts.  Anything else raises ``TypeError``
    so non-serialisable state is caught at save time, not at load time.
    """
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise TypeError(
                "cannot encode object-dtype arrays into a checkpoint"
            )
        data = np.ascontiguousarray(value)
        return {ARRAY_KEY: {
            "dtype": str(data.dtype),
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        if ARRAY_KEY in value:
            raise TypeError(
                f"checkpoint dicts may not use the reserved key {ARRAY_KEY!r}"
            )
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint dict keys must be strings, got {key!r}"
                )
            encoded[key] = encode_state(item)
        return encoded
    if isinstance(value, (list, tuple)):
        return [encode_state(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__} into a checkpoint")


def decode_state(value):
    """Inverse of :func:`encode_state` (tuples come back as lists)."""
    if isinstance(value, dict):
        if set(value) == {ARRAY_KEY}:
            spec = value[ARRAY_KEY]
            raw = base64.b64decode(spec["data"])
            array = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
            return array.reshape([int(dim) for dim in spec["shape"]]).copy()
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


def dump_checkpoint(payload: dict, path: str | Path) -> None:
    """Encode ``payload`` and write it to ``path`` as JSON.

    The write is atomic (temp file + rename), so overwriting an existing
    checkpoint never destroys it when the process dies or the disk fills
    mid-write.
    """
    path = Path(path)
    text = json.dumps(encode_state(payload))
    temp = path.with_name(path.name + ".tmp")
    try:
        temp.write_text(text)
        os.replace(temp, path)
    finally:
        temp.unlink(missing_ok=True)


def load_checkpoint_payload(path: str | Path) -> dict:
    """Read a checkpoint file written by :func:`dump_checkpoint`."""
    return decode_state(json.loads(Path(path).read_text()))
