"""Populate the registries with every built-in component.

Importing this module is a side effect: each imported module carries
``@register_*`` decorators that add its components to the registries in
:mod:`repro.api.registry`.  The registries import this module lazily before
their first lookup, so merely registering a plugin never pays this cost.
"""

import repro.baselines.fedavg  # noqa: F401
import repro.baselines.policies  # noqa: F401
import repro.baselines.pyramidfl  # noqa: F401
import repro.baselines.sfl  # noqa: F401
import repro.core.mergesfl  # noqa: F401
import repro.data.synthetic  # noqa: F401
import repro.nn.models  # noqa: F401
import repro.parallel  # noqa: F401
import repro.selection.solvers  # noqa: F401
import repro.splitpoint.policies  # noqa: F401
