"""Public extension and execution API.

* :mod:`repro.api.registry` -- pluggable registries for algorithms,
  datasets, models and policies, with ``@register_*`` decorators.
* :mod:`repro.api.algorithm` -- the unified :class:`Algorithm` interface
  every engine and facade implements.
* :mod:`repro.api.components` -- configuration-to-components assembly
  (datasets, partitions, models, clusters) and registry-driven algorithm
  construction.
* :mod:`repro.api.events` -- the typed session event vocabulary
  (:class:`EventBus`, :class:`Callback` and the event payload types).
* :mod:`repro.api.session` -- :class:`Session`, the steppable,
  checkpointable driver around one experiment.

Only the light submodules are imported eagerly; :class:`Session` and the
component builders load on first attribute access so that low-level modules
(which register themselves here) can import :mod:`repro.api.registry`
without dragging in the whole package.
"""

from __future__ import annotations

import importlib

from repro.api.algorithm import Algorithm, EngineBackedAlgorithm
from repro.api.events import (
    EVENT_TYPES,
    Callback,
    CheckpointSaved,
    Evaluation,
    EventBus,
    RoundEnd,
    RoundStart,
)
from repro.api.registry import (
    ALGORITHMS,
    DATASETS,
    EXECUTORS,
    MODELS,
    POLICIES,
    Registry,
    register_algorithm,
    register_dataset,
    register_executor,
    register_model,
    register_policy,
)

#: Attributes resolved lazily to avoid import cycles with the modules that
#: register built-in components.
_LAZY_ATTRIBUTES = {
    "Session": "repro.api.session",
    "ExperimentComponents": "repro.api.components",
    "build_algorithm": "repro.api.components",
    "build_components": "repro.api.components",
    "build_model_for": "repro.api.components",
}

__all__ = [
    "Algorithm",
    "EngineBackedAlgorithm",
    "EVENT_TYPES",
    "Callback",
    "CheckpointSaved",
    "Evaluation",
    "EventBus",
    "RoundEnd",
    "RoundStart",
    "Registry",
    "ALGORITHMS",
    "DATASETS",
    "EXECUTORS",
    "MODELS",
    "POLICIES",
    "register_algorithm",
    "register_dataset",
    "register_executor",
    "register_model",
    "register_policy",
    "Session",
    "ExperimentComponents",
    "build_algorithm",
    "build_components",
    "build_model_for",
]


def __getattr__(name: str):
    module_name = _LAZY_ATTRIBUTES.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)
