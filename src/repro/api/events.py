"""Typed session events.

A :class:`~repro.api.session.Session` owns an :class:`EventBus` and emits a
small, fixed vocabulary of events while it drives an experiment:

========================  =====================================================
event name                payload (second handler argument)
========================  =====================================================
``round_start``           :class:`RoundStart` -- the index of the round about
                          to execute.
``evaluation``            :class:`Evaluation` -- the round's
                          :class:`~repro.metrics.history.RoundRecord`, emitted
                          right after the post-round evaluation.
``round_end``             :class:`RoundEnd` -- the same record, emitted after
                          ``evaluation`` once the round is fully accounted.
``checkpoint_saved``      :class:`CheckpointSaved` -- the checkpoint path and
                          the number of completed rounds it captures.
========================  =====================================================

Handlers take ``(session, event)``.  A truthy return value from a
``round_end`` or ``evaluation`` handler requests early stop of the current
:meth:`Session.run` loop (``round_start`` and ``checkpoint_saved`` returns
are ignored).  Dispatch is failure-isolated: every handler fires even when
an earlier one raises, after which the first error is re-raised as a
:class:`~repro.exceptions.CallbackError` naming the offending handler.

:class:`Callback` packages a set of handlers as one picklable object -- the
form :class:`repro.study.StudyRunner` ships into trial worker processes.
Subclasses override any of the ``on_*`` methods; only overridden methods
are subscribed.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import CallbackError, ConfigurationError
from repro.metrics.history import RoundRecord
from repro.utils.logging import get_logger

logger = get_logger("api.events")

#: The full event vocabulary, in emission order within one round.
EVENT_TYPES = ("round_start", "evaluation", "round_end", "checkpoint_saved")

#: Events whose handlers' truthy return values request early stop.
STOPPING_EVENTS = ("evaluation", "round_end")


@dataclass(frozen=True)
class RoundStart:
    """Emitted immediately before a round executes."""

    round_index: int


@dataclass(frozen=True)
class Evaluation:
    """Emitted after the post-round evaluation of the global model."""

    record: RoundRecord


@dataclass(frozen=True)
class RoundEnd:
    """Emitted once a round is fully executed and accounted."""

    record: RoundRecord


@dataclass(frozen=True)
class CheckpointSaved:
    """Emitted after a checkpoint file has been written."""

    path: str
    rounds_completed: int


#: Signature of event handlers.
EventHandler = Callable[[object, object], object]


def _handler_name(handler: object) -> str:
    """Best-effort human-readable name for an event handler."""
    for attribute in ("__qualname__", "__name__"):
        name = getattr(handler, attribute, None)
        if name:
            return name
    return repr(handler)


class EventBus:
    """Per-session registry and dispatcher for the events above."""

    def __init__(self) -> None:
        self._handlers: dict[str, list[EventHandler]] = {
            name: [] for name in EVENT_TYPES
        }

    def _check_event(self, event: str) -> None:
        if event not in self._handlers:
            known = ", ".join(EVENT_TYPES)
            raise ConfigurationError(
                f"unknown session event {event!r} (known events: {known})"
            )

    def on(self, event: str, handler: EventHandler | None = None):
        """Subscribe ``handler`` to ``event``; usable as a decorator.

        Returns the handler, so ``@bus.on("round_end")`` leaves the
        decorated function usable under its own name.
        """
        self._check_event(event)

        def _subscribe(target: EventHandler) -> EventHandler:
            self._handlers[event].append(target)
            return target

        if handler is None:
            return _subscribe
        return _subscribe(handler)

    def handlers(self, event: str) -> tuple[EventHandler, ...]:
        """The handlers currently subscribed to ``event`` (a snapshot)."""
        self._check_event(event)
        return tuple(self._handlers[event])

    def emit(self, event: str, session, payload) -> bool:
        """Fire every handler of ``event`` and report early-stop requests.

        All handlers run even when one raises: the failure is logged with
        the handler's name, the remaining handlers still fire, and the
        first failure is then re-raised as :class:`CallbackError` (chained
        from the original exception).  Returns ``True`` when any handler
        of a stopping event returned a truthy value.
        """
        self._check_event(event)
        stop = False
        failures: list[tuple[str, BaseException]] = []
        for handler in list(self._handlers[event]):
            try:
                result = handler(session, payload)
            except Exception as error:  # noqa: BLE001 - isolate, then re-raise
                name = _handler_name(handler)
                logger.exception("%s callback %r failed", event, name)
                failures.append((name, error))
                continue
            if result and event in STOPPING_EVENTS:
                stop = True
        if failures:
            name, error = failures[0]
            raise CallbackError(
                f"{event} callback {name!r} raised "
                f"{type(error).__name__}: {error}"
            ) from error
        return stop


class Callback:
    """Bundle of event handlers attached with ``session.add_callback``.

    Subclass and override any of :meth:`on_round_start`,
    :meth:`on_evaluation`, :meth:`on_round_end` or
    :meth:`on_checkpoint_saved`; :meth:`subscribe` registers exactly the
    overridden methods on a session's bus.  Instances only carry plain
    attribute state, so shipped callbacks pickle cleanly into the trial
    worker processes of :class:`repro.study.StudyRunner`.
    """

    def on_round_start(self, session, event: RoundStart) -> object:
        """Handle ``round_start``."""

    def on_evaluation(self, session, event: Evaluation) -> object:
        """Handle ``evaluation``; a truthy return requests early stop."""

    def on_round_end(self, session, event: RoundEnd) -> object:
        """Handle ``round_end``; a truthy return requests early stop."""

    def on_checkpoint_saved(self, session, event: CheckpointSaved) -> object:
        """Handle ``checkpoint_saved``."""

    def subscribe(self, bus: EventBus) -> None:
        """Register every overridden ``on_<event>`` method on ``bus``."""
        for event in EVENT_TYPES:
            method_name = f"on_{event}"
            if getattr(type(self), method_name) is not getattr(Callback, method_name):
                bus.on(event, getattr(self, method_name))

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable state to carry through a session checkpoint.

        Stateless callbacks return ``{}`` (the default).  Stateful ones
        (e.g. an early stopper's best-so-far) override this together with
        :meth:`load_state_dict` so a trial resumed mid-run behaves
        bit-identically to one that was never interrupted.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output from a checkpoint."""
        if state:
            raise ConfigurationError(
                f"{type(self).__name__} does not accept callback state, "
                f"got keys {sorted(state)}"
            )
