"""Steppable, checkpointable experiment sessions.

A :class:`Session` wraps the assembled components and the configured
algorithm behind an incremental execution surface::

    session = Session.from_config(config)
    record = session.step()          # one communication round
    session.run(5)                   # five more rounds
    session.run()                    # the rest of config.num_rounds

Typed events stream progress and implement early stopping (see
:mod:`repro.api.events` for the vocabulary)::

    @session.on("round_end")
    def watch(session, event):
        print(event.record.round_index, event.record.test_accuracy)
        return event.record.test_accuracy >= 0.9   # truthy return stops run()

    session.add_callback(EarlyStopping(target=0.9))   # packaged handlers

The legacy ``on_round_end`` hook remains as a thin alias that receives the
record directly::

    @session.on_round_end
    def watch(session, record):
        return record.test_accuracy >= 0.9

Checkpoints are plain JSON files carrying the configuration plus the full
mutable algorithm state (weights, optimizer buffers, RNG streams, clock,
traffic and history), so a restored session continues bit-exactly where the
saved one stopped::

    session.save_checkpoint("run.ckpt.json")
    resumed = Session.load_checkpoint("run.ckpt.json")
    resumed.run()
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.api.algorithm import Algorithm
from repro.api.checkpoint import dump_checkpoint, encode_state, load_checkpoint_payload
from repro.api.components import ExperimentComponents, build_algorithm, build_components
from repro.api.events import (
    Callback,
    CheckpointSaved,
    Evaluation,
    EventBus,
    RoundEnd,
    RoundStart,
)
from repro.config import ExperimentConfig
from repro.exceptions import ConfigurationError
from repro.metrics.history import History, RoundRecord
from repro.utils.logging import get_logger

logger = get_logger("api.session")

#: Format version stamped into checkpoints.
CHECKPOINT_VERSION = 1

#: Signature of round-end hooks; a truthy return value requests early stop.
RoundCallback = Callable[["Session", RoundRecord], object]


class Session:
    """Drives one experiment incrementally, with hooks and checkpointing.

    Args:
        config: The experiment configuration.
        components: Pre-assembled components; built from ``config`` when
            omitted and needed to construct the algorithm.
        algorithm: A pre-built algorithm; resolved from the
            :data:`~repro.api.registry.ALGORITHMS` registry when omitted.
            When an algorithm is supplied without components,
            ``session.components`` is ``None`` -- the caller wired the
            algorithm itself, so no (possibly unrelated) component set is
            materialised.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        components: ExperimentComponents | None = None,
        algorithm: Algorithm | None = None,
    ) -> None:
        self.config = config
        #: Whether the caller supplied the components or the algorithm
        #: instead of the registry; such wiring cannot be reproduced from
        #: the config alone, so checkpoints record it and refuse a
        #: registry-based rebuild.
        self._custom_wiring = algorithm is not None or components is not None
        if algorithm is None:
            components = components if components is not None else build_components(config)
            algorithm = build_algorithm(components)
        self.components = components
        self.algorithm = algorithm
        self.events = EventBus()
        #: Callbacks attached via :meth:`add_callback`, in order; their
        #: state rides in checkpoints so resumed runs behave identically.
        self.callbacks: list[Callback] = []
        self._stop_requested = False

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "Session":
        """Assemble components and algorithm for ``config``."""
        return cls(config)

    # -- observation ---------------------------------------------------------
    @property
    def history(self) -> History:
        """Per-round records accumulated so far."""
        return self.algorithm.history

    @property
    def rounds_completed(self) -> int:
        """Number of communication rounds executed so far."""
        return self.algorithm.rounds_completed

    def global_model(self):
        """A copy of the current global model, in evaluation mode."""
        return self.algorithm.global_model()

    # -- hooks ---------------------------------------------------------------
    def on(self, event: str, handler=None):
        """Subscribe a handler ``(session, event)`` to a typed session event.

        Usable as a decorator: ``@session.on("round_end")``.  See
        :mod:`repro.api.events` for the event vocabulary; a truthy return
        from a ``round_end``/``evaluation`` handler requests early stop of
        the current :meth:`run` loop.
        """
        return self.events.on(event, handler)

    def on_round_end(self, callback: RoundCallback) -> RoundCallback:
        """Register a legacy round-end hook; usable as a decorator.

        Thin alias for ``session.on("round_end", ...)`` that unwraps the
        event: hooks receive ``(session, record)`` and a truthy return
        value requests early stop, exactly as before the typed event API.
        """
        def adapter(session: "Session", event: RoundEnd) -> object:
            return callback(session, event.record)

        adapter.__qualname__ = getattr(callback, "__qualname__", repr(callback))
        self.events.on("round_end", adapter)
        return callback

    def add_callback(self, callback: Callback) -> Callback:
        """Attach a packaged :class:`~repro.api.events.Callback` instance.

        Checkpoints capture every attached callback's
        :meth:`~repro.api.events.Callback.state_dict`; to restore it, attach
        the same callbacks (same order) *before* loading the checkpoint.
        """
        callback.subscribe(self.events)
        self.callbacks.append(callback)
        return callback

    # -- execution -----------------------------------------------------------
    def step(self) -> RoundRecord:
        """Execute exactly one communication round and fire its events.

        Emits ``round_start`` before the round, then ``evaluation`` and
        ``round_end`` with the resulting record.  One raising handler does
        not suppress the others (see :meth:`EventBus.emit`).
        """
        self.events.emit("round_start", self, RoundStart(self.rounds_completed))
        record = self.algorithm.step_round()
        stop = self.events.emit("evaluation", self, Evaluation(record))
        if self.events.emit("round_end", self, RoundEnd(record)):
            stop = True
        if stop:
            self._stop_requested = True
        return record

    def run(self, num_rounds: int | None = None) -> History:
        """Execute ``num_rounds`` additional rounds and return the history.

        When ``num_rounds`` is omitted the session runs up to
        ``config.num_rounds`` total rounds -- i.e. the remainder, which
        makes ``Session.from_config(c).run()`` equivalent to the classic
        ``run_experiment(c)`` and makes ``run()`` after a checkpoint resume
        finish the originally configured schedule.
        """
        if num_rounds is None:
            num_rounds = max(0, self.config.num_rounds - self.rounds_completed)
        elif num_rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {num_rounds}")
        self._stop_requested = False
        for _ in range(num_rounds):
            self.step()
            if self._stop_requested:
                logger.info(
                    "early stop requested after round %d", self.rounds_completed - 1
                )
                break
        return self.history

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Release execution resources (e.g. executor process pools).

        The session stays usable for observation afterwards; idempotent.
        Sessions also work as context managers::

            with Session.from_config(config) as session:
                session.run()
        """
        self.algorithm.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Configuration plus full mutable algorithm state.

        Drains the algorithm first: a pipelined or bounded-staleness round
        (see :mod:`repro.parallel.pipeline`) may have asynchronously
        dispatched work still in flight on the executor, and the capture
        must not race it.  Cross-round artifacts that survive the drain --
        the staleness scheduler's prefetched next-round plan -- are
        *serialized* by the engine's ``state_dict`` instead, so resume is
        exact at any staleness.
        """
        self.algorithm.drain()
        return {
            "version": CHECKPOINT_VERSION,
            "config": self.config.to_dict(),
            "custom_wiring": self._custom_wiring,
            "rounds_completed": self.rounds_completed,
            "algorithm": self.algorithm.state_dict(),
            "callbacks": [
                {"type": type(callback).__name__, "state": callback.state_dict()}
                for callback in self.callbacks
            ],
        }

    @staticmethod
    def _checkpoint_config(state: dict) -> ExperimentConfig:
        """Validate the checkpoint version and parse its configuration."""
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint version {version!r}; "
                f"expected {CHECKPOINT_VERSION}"
            )
        return ExperimentConfig.from_dict(state["config"])

    def load_state_dict(self, state: dict) -> None:
        """Restore a state dict captured from a session with the same config."""
        saved_config = self._checkpoint_config(state)
        # Compare through the checkpoint encoding so JSON-lossy values
        # (tuples decode as lists) do not fail the equality check.
        if encode_state(saved_config.to_dict()) != encode_state(self.config.to_dict()):
            raise ConfigurationError(
                "checkpoint was saved from a different configuration; "
                "rebuild the session with Session.load_checkpoint instead"
            )
        self._restore(state)

    def _restore(self, state: dict) -> None:
        """Load the algorithm state and cross-check the round counter."""
        self.algorithm.load_state_dict(state["algorithm"])
        expected_rounds = state.get("rounds_completed")
        if expected_rounds is not None and expected_rounds != self.rounds_completed:
            raise ConfigurationError(
                f"inconsistent checkpoint: rounds_completed says "
                f"{expected_rounds} but the restored algorithm reports "
                f"{self.rounds_completed}"
            )
        self._restore_callbacks(state.get("callbacks", []))

    def _restore_callbacks(self, saved: list) -> None:
        """Match saved callback states to the attached callbacks by position.

        Restoring without re-attaching callbacks is allowed (the caller
        opted out of them), as is attaching callbacks to a checkpoint that
        never recorded any (they simply start fresh).  But when both sides
        have callbacks and they do not line up -- wrong count or wrong
        types -- that is an error: silently continuing with fresh callback
        state would break the resumed-equals-uninterrupted guarantee.
        """
        if not self.callbacks or not saved:
            return
        saved_types = [entry.get("type") for entry in saved]
        attached_types = [type(callback).__name__ for callback in self.callbacks]
        if saved_types != attached_types:
            raise ConfigurationError(
                f"checkpoint carries callback state for {saved_types} but "
                f"the session has {attached_types} attached; attach the "
                f"same callbacks in the same order before restoring"
            )
        for callback, entry in zip(self.callbacks, saved):
            callback.load_state_dict(entry.get("state", {}))

    def save_checkpoint(self, path: str | Path) -> None:
        """Write a JSON checkpoint that :meth:`load_checkpoint` can resume."""
        dump_checkpoint(self.state_dict(), path)
        logger.info(
            "checkpointed %s after %d rounds to %s",
            self.config.algorithm, self.rounds_completed, path,
        )
        self.events.emit(
            "checkpoint_saved", self,
            CheckpointSaved(str(path), self.rounds_completed),
        )

    @classmethod
    def load_checkpoint(cls, path: str | Path) -> "Session":
        """Rebuild a session from a checkpoint and restore its state.

        Components are reconstructed deterministically from the saved
        configuration (everything construction-time is seeded), then the
        saved mutable state overwrites weights, RNG streams and accounting,
        so the resumed run continues bit-exactly.
        """
        payload = load_checkpoint_payload(path)
        if payload.get("custom_wiring"):
            raise ConfigurationError(
                "checkpoint was saved from a session with hand-wired "
                "components or algorithm, which the registry cannot "
                "rebuild; reconstruct the wiring yourself and restore it "
                "with Session(config, ...).load_state_dict(...)"
            )
        session = cls.from_config(cls._checkpoint_config(payload))
        session._restore(payload)
        return session
