"""Setuptools shim.

The offline environment has no ``wheel`` package, so editable installs fall
back to the legacy ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
